//! Hand-rolled HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Implements exactly the slice of the protocol the serving layer needs:
//! request-line + headers + `Content-Length` bodies, keep-alive with
//! pipelining (bytes past the current request stay buffered for the
//! next), and bounded header/body sizes so a hostile peer cannot make a
//! worker allocate without limit. Chunked transfer encoding, trailers,
//! and continuation lines are deliberately out of scope — requests using
//! them are rejected, not misparsed.
//!
//! Reads use the caller's socket read-timeout as a poll tick: a timeout
//! with *no* buffered request bytes surfaces as [`ReadOutcome::Idle`] so
//! the worker can check the shutdown flag between requests, while a
//! timeout mid-request keeps waiting up to [`REQUEST_DEADLINE`].

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::trace::{tracing_enabled, TraceIds};

/// Maximum accepted size of the request line + headers.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// How long a started request may take to arrive in full before the
/// connection is dropped (slow-loris bound).
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `POST`.
    pub method: String,
    /// Request target as sent, e.g. `/v1/classify`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Request trace id minted at accept (0 = tracing disabled).
    pub trace_id: u64,
    /// `autoac_obs::now_ns()` when the request's first byte was seen.
    pub t0_ns: u64,
    /// First byte → fully parsed, in nanoseconds.
    pub parse_ns: u64,
}

/// What [`read_request`] produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF at a request boundary.
    Closed,
    /// Read-timeout tick with no request in flight (poll the shutdown
    /// flag and call again).
    Idle,
    /// Malformed or over-limit request: respond with this status and
    /// close.
    Bad(u16, &'static str),
}

/// Reads one request from `stream`, buffering into `buf` across calls
/// (left-over bytes belong to the next pipelined request). A completed
/// request leaves with its trace id minted from `ids` (0 when tracing is
/// off) and its first-byte / parse timings stamped on the
/// `autoac_obs::now_ns` clock.
pub fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    ids: &TraceIds,
) -> io::Result<ReadOutcome> {
    let started = Instant::now();
    // Pipelined leftovers mean this request's bytes are already here.
    let mut first_byte_ns = if buf.is_empty() { None } else { Some(autoac_obs::now_ns()) };
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(outcome) = try_parse(buf)? {
            if let ReadOutcome::Request(mut r) = outcome {
                let t0 = first_byte_ns.unwrap_or_else(autoac_obs::now_ns);
                r.t0_ns = t0;
                r.parse_ns = autoac_obs::now_ns().saturating_sub(t0);
                r.trace_id = if tracing_enabled() { ids.mint() } else { 0 };
                return Ok(ReadOutcome::Request(r));
            }
            return Ok(outcome);
        }
        if buf.len() > MAX_HEADER_BYTES && find_header_end(buf).is_none() {
            return Ok(ReadOutcome::Bad(431, "header block too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Ok(ReadOutcome::Bad(400, "connection closed mid-request"))
                };
            }
            Ok(n) => {
                if first_byte_ns.is_none() {
                    first_byte_ns = Some(autoac_obs::now_ns());
                }
                // analyze:allow(panic, Read::read returns n <= chunk.len() by contract)
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    return Ok(ReadOutcome::Idle);
                }
                if started.elapsed() > REQUEST_DEADLINE {
                    return Ok(ReadOutcome::Bad(408, "request did not arrive in time"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Attempts to parse one complete request out of `buf`; `Ok(None)` means
/// more bytes are needed.
fn try_parse(buf: &mut Vec<u8>) -> io::Result<Option<ReadOutcome>> {
    let Some(header_end) = find_header_end(buf) else {
        return Ok(None);
    };
    if header_end > MAX_HEADER_BYTES {
        return Ok(Some(ReadOutcome::Bad(431, "header block too large")));
    }
    let header = match std::str::from_utf8(&buf[..header_end]) {
        Ok(h) => h,
        Err(_) => return Ok(Some(ReadOutcome::Bad(400, "non-utf8 header block"))),
    };
    let mut lines = header.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Some(ReadOutcome::Bad(400, "malformed request line")));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Ok(Some(ReadOutcome::Bad(400, "malformed request line")));
    }
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Some(ReadOutcome::Bad(400, "malformed header line")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return Ok(Some(ReadOutcome::Bad(400, "bad content-length"))),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Ok(Some(ReadOutcome::Bad(501, "transfer-encoding not supported")));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Some(ReadOutcome::Bad(413, "body too large")));
    }
    let total = header_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        body: buf[header_end + 4..total].to_vec(),
        keep_alive,
        trace_id: 0,
        t0_ns: 0,
        parse_ns: 0,
    };
    buf.drain(..total);
    Ok(Some(ReadOutcome::Request(request)))
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a full response with `Content-Length` framing.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, content_type, body, keep_alive, &[])
}

/// [`write_response`] plus extra response headers (name, value) — the
/// serving layer uses this to echo `x-autoac-trace` on traced requests.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, String)],
) -> io::Result<()> {
    let mut msg = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        msg.push_str(&format!("{name}: {value}\r\n"));
    }
    msg.push_str("\r\n");
    let mut msg = msg.into_bytes();
    // One write for the whole response: a head-only first segment would
    // sit in Nagle's buffer waiting for the peer's delayed ACK.
    msg.extend_from_slice(body);
    stream.write_all(&msg)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Vec<ReadOutcome> {
        // Feed raw bytes through a real socket pair.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        client.write_all(raw).expect("write");
        drop(client); // EOF after the payload
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("timeout");
        let mut buf = Vec::new();
        let mut out = Vec::new();
        let ids = TraceIds::new(7);
        loop {
            match read_request(&mut server, &mut buf, &ids).expect("read") {
                ReadOutcome::Closed => break,
                o @ ReadOutcome::Bad(..) => {
                    out.push(o);
                    break;
                }
                o => out.push(o),
            }
        }
        out
    }

    #[test]
    fn parses_post_with_body_and_keep_alive_default() {
        let raw = b"POST /v1/classify HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let out = roundtrip(raw);
        let [ReadOutcome::Request(r)] = &out[..] else {
            panic!("{out:?}");
        };
        assert_eq!((r.method.as_str(), r.path.as_str()), ("POST", "/v1/classify"));
        assert_eq!(r.body, b"hello");
        assert!(r.keep_alive);
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let out = roundtrip(raw);
        let [ReadOutcome::Request(a), ReadOutcome::Request(b)] = &out[..] else {
            panic!("{out:?}");
        };
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/metrics");
        assert!(!b.keep_alive);
    }

    #[test]
    fn rejects_oversized_body_and_bad_framing() {
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(roundtrip(huge.as_bytes())[..], [ReadOutcome::Bad(413, _)]));
        assert!(matches!(
            roundtrip(b"BROKEN\r\n\r\n")[..],
            [ReadOutcome::Bad(400, _)]
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")[..],
            [ReadOutcome::Bad(400, _)]
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")[..],
            [ReadOutcome::Bad(501, _)]
        ));
        // Close mid-body.
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")[..],
            [ReadOutcome::Bad(400, _)]
        ));
    }

    #[test]
    fn minted_trace_ids_and_timings_ride_the_request() {
        let _serial = crate::test_lock();
        crate::trace::set_trace_force(Some(true));
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let out = roundtrip(raw);
        crate::trace::set_trace_force(None);
        let [ReadOutcome::Request(a), ReadOutcome::Request(b)] = &out[..] else {
            panic!("{out:?}");
        };
        assert_ne!(a.trace_id, 0, "traced request mints a nonzero id");
        assert_ne!(b.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id, "each request gets its own id");
        assert!(a.t0_ns <= b.t0_ns, "first-byte stamps are monotone");
    }

    #[test]
    fn disabled_tracing_leaves_trace_id_zero() {
        let _serial = crate::test_lock();
        crate::trace::set_trace_force(Some(false));
        let out = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        crate::trace::set_trace_force(None);
        let [ReadOutcome::Request(r)] = &out[..] else {
            panic!("{out:?}");
        };
        assert_eq!(r.trace_id, 0);
    }

    #[test]
    fn oversized_header_block_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(MAX_HEADER_BYTES)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(roundtrip(&raw)[..], [ReadOutcome::Bad(431, _)]));
    }
}
