//! The model thread: adaptive micro-batching over one inference model.
//!
//! Workers enqueue [`Job`]s over an mpsc channel; this thread coalesces
//! concurrent classify requests into one batch and answers them all from
//! a *single* full-graph forward. Because the forward reads only the
//! materialized attribute block and reseeds its RNG per call (see
//! `autoac_core::infer`), the logits a request receives are bitwise
//! independent of which other requests shared its batch — batching is
//! purely a throughput lever, never an accuracy or determinism trade.
//!
//! ## Flush policy
//!
//! A batch opens when the first classify job arrives and closes when
//! either `batch_max` jobs are queued or an adaptive flush window
//! expires. The window is `flush_us` scaled by the EWMA of recent batch
//! sizes relative to `batch_max`: a lightly loaded server converges to a
//! near-zero window (single requests don't idle waiting for company that
//! never comes), while under concurrency the window grows toward
//! `flush_us` and batches fill. Admin jobs (reload) end collection early
//! and apply *between* batches, so in-flight requests are always answered
//! by the checkpoint that was resident when their batch started.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::{Duration, Instant};

use autoac_ckpt::ServeState;
use autoac_core::ServeStateInfo;
use autoac_obs::{counter_add, flight_record, hist_record, now_ns, FlightKind};

use crate::host::{ModelHost, ViewSlot};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// When false, every request runs its own forward (the A/B baseline).
    pub batching: bool,
    /// Maximum classify jobs coalesced into one forward.
    pub batch_max: usize,
    /// Upper bound on the flush window, in microseconds.
    pub flush_us: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { batching: true, batch_max: 64, flush_us: 200 }
    }
}

/// Scores for one requested node.
#[derive(Debug, Clone)]
pub struct NodeScore {
    /// The node id as requested.
    pub node: usize,
    /// Argmax class.
    pub label: usize,
    /// Full logit row.
    pub logits: Vec<f32>,
}

/// Answer to one classify job.
#[derive(Debug, Clone)]
pub struct ClassifyReply {
    /// Config fingerprint (hex) of the checkpoint that produced the
    /// scores — lets clients attribute every response across hot-reloads.
    pub ckpt: String,
    /// One entry per requested node, in request order.
    pub rows: Vec<NodeScore>,
    /// Model-thread stage timing for this job (trace timeline input).
    pub timing: JobTiming,
}

/// Where a classify job's time went inside the model thread, in
/// nanoseconds on the `autoac_obs::now_ns` clock. Rides back to the
/// worker on [`ClassifyReply`] so the request timeline and the stage
/// histograms are built from the model thread's own measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobTiming {
    /// Enqueue → dequeued by the model thread (channel wait).
    pub queue_ns: u64,
    /// Dequeued → batch forward started (coalescing wait).
    pub batch_wait_ns: u64,
    /// The batch's single forward, attributed whole to every member.
    pub compute_ns: u64,
    /// How many classify jobs shared the forward.
    pub batch_size: usize,
}

/// Work item for the model thread. Node ids are validated worker-side
/// against the published view before enqueueing (reloads never change
/// the graph, so the bound stays correct across swaps).
pub enum Job {
    /// Score `nodes`; answer on `reply`.
    Classify {
        /// Requested node ids, each `< num_nodes`.
        nodes: Vec<usize>,
        /// Where the (single) reply goes.
        reply: Sender<ClassifyReply>,
        /// Originating request's trace id (0 = untraced).
        trace_id: u64,
        /// `autoac_obs::now_ns()` at enqueue, for queue-wait attribution.
        enqueued_ns: u64,
    },
    /// Swap in a new checkpoint between batches.
    Reload {
        /// The replacement checkpoint.
        state: Box<ServeState>,
        /// `Ok` with the new identity, or why it was refused.
        reply: Sender<Result<ServeStateInfo, String>>,
    },
}

/// Body of the model thread. Builds the host in-thread (the pipeline is
/// not `Send`), reports readiness through `ready`, then serves jobs until
/// every [`Job`] sender is dropped — which is the graceful-shutdown
/// signal: the channel only disconnects after all workers have finished
/// their final requests, so nothing in flight is ever dropped.
pub fn run_model_thread(
    state: ServeState,
    cfg: BatchConfig,
    jobs: Receiver<Job>,
    ready: Sender<Result<ViewSlot, String>>,
) {
    let mut host = match ModelHost::new(&state) {
        Ok(h) => h,
        Err(e) => {
            let _ = ready.send(Err(e));
            return;
        }
    };
    let _ = ready.send(Ok(host.slot()));

    // Seed the EWMA at 1: an idle server starts with a near-zero window
    // and only earns a longer one by actually observing batches.
    let mut ewma = 1.0f64;
    loop {
        let first = match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // One queued classify job plus its model-thread arrival stamp.
        struct Pending {
            nodes: Vec<usize>,
            reply: Sender<ClassifyReply>,
            trace_id: u64,
            enqueued_ns: u64,
            dequeued_ns: u64,
        }
        let mut batch: Vec<Pending> = Vec::new();
        let mut admin = Vec::new();
        match first {
            Job::Classify { nodes, reply, trace_id, enqueued_ns } => {
                batch.push(Pending { nodes, reply, trace_id, enqueued_ns, dequeued_ns: now_ns() })
            }
            Job::Reload { state, reply } => {
                let _ = reply.send(host.reload(&state));
                continue;
            }
        }
        // Why this batch stopped collecting, for the flight recorder.
        let mut flush_reason = "unbatched";
        let mut window_us = 0u64;
        if cfg.batching {
            let scale = (ewma / cfg.batch_max.max(1) as f64).min(1.0);
            window_us = (cfg.flush_us as f64 * scale).ceil() as u64;
            let deadline = Instant::now() + Duration::from_micros(window_us);
            flush_reason = "full";
            while batch.len() < cfg.batch_max {
                match jobs.try_recv() {
                    Ok(Job::Classify { nodes, reply, trace_id, enqueued_ns }) => batch.push(
                        Pending { nodes, reply, trace_id, enqueued_ns, dequeued_ns: now_ns() },
                    ),
                    Ok(job) => {
                        // Stop collecting: run what we have, then apply.
                        admin.push(job);
                        flush_reason = "admin";
                        break;
                    }
                    Err(TryRecvError::Empty) => {
                        if Instant::now() >= deadline {
                            flush_reason = "deadline";
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(20));
                    }
                    Err(TryRecvError::Disconnected) => {
                        flush_reason = "disconnect";
                        break;
                    }
                }
            }
        }
        ewma = 0.8 * ewma + 0.2 * batch.len() as f64;
        flight_record(FlightKind::Flush, batch.len() as u64, window_us, flush_reason);

        // One full-graph forward answers every request in the batch. Its
        // latency exemplar points at the first traced member, so a slow
        // forward in /metrics links straight to a /debug/traces timeline.
        let exemplar_trace = batch.iter().map(|p| p.trace_id).find(|&t| t != 0).unwrap_or(0);
        let fwd_start_ns = now_ns();
        let t0 = Instant::now();
        let logits = host.model().logits();
        let compute_ns = t0.elapsed().as_nanos() as u64;
        autoac_obs::hist_record_ex("serve_forward_ns", compute_ns as f64, exemplar_trace);
        hist_record("serve_batch_size", batch.len() as f64);
        counter_add("serve_batches_total", 1);
        counter_add("serve_batched_requests_total", batch.len() as u64);
        let batch_size = batch.len();
        let ckpt = &host.model().info().config_fp_hex;
        for p in batch {
            let rows = p
                .nodes
                .iter()
                .map(|&n| NodeScore {
                    node: n,
                    label: logits.argmax_row(n),
                    logits: logits.row(n).to_vec(),
                })
                .collect();
            let timing = JobTiming {
                queue_ns: p.dequeued_ns.saturating_sub(p.enqueued_ns),
                batch_wait_ns: fwd_start_ns.saturating_sub(p.dequeued_ns),
                compute_ns,
                batch_size,
            };
            // A send failure only means the requesting worker gave up
            // (client disconnect); nothing to do.
            let _ = p.reply.send(ClassifyReply { ckpt: ckpt.clone(), rows, timing });
        }
        for job in admin {
            if let Job::Reload { state, reply } = job {
                counter_add("serve_reloads_total", 1);
                let _ = reply.send(host.reload(&state));
            }
        }
    }
}
