//! Minimal blocking HTTP/1.1 client for driving the server.
//!
//! Used by the integration tests, `serve_bench`'s closed-loop clients,
//! and `scripts/verify.sh` (via `serve_bench --connect`), so none of them
//! need `curl` or an HTTP dependency. Keeps one connection alive across
//! requests, mirroring the framing rules in [`crate::http`].

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A keep-alive connection to one server.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A parsed response: status code, headers, and body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes, decoded per `Content-Length`.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == needle).map(|(_, v)| v.as_str())
    }

    /// The request's trace id from the `x-autoac-trace` echo header, when
    /// the server traced it.
    pub fn trace_id(&self) -> Option<u64> {
        self.header("x-autoac-trace").and_then(|v| u64::from_str_radix(v, 16).ok())
    }
}

impl Client {
    /// Connects with a generous read timeout (model loads can take a
    /// moment under load).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, buf: Vec::new() })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<Response> {
        self.request("POST", path, body.as_bytes())
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: autoac\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before response header",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
        let mut lines = header.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let total = header_end + 4 + content_length;
        while self.buf.len() < total {
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = self.buf[header_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Response { status, headers, body })
    }
}
