//! The server proper: acceptor, worker pool, routing, and lifecycle.
//!
//! ## Thread layout
//!
//! ```text
//!  acceptor ──streams──▶ workers (N) ──Job──▶ model thread (1)
//!     │                     │  ▲                  │
//!     │ nonblocking poll    │  └── per-job reply ─┘
//!     ▼                     ▼
//!  shutdown flag      SharedView slot (Arc swap, read-only endpoints)
//! ```
//!
//! ## Graceful shutdown
//!
//! `POST /admin/shutdown`, a SIGINT/SIGTERM (when [`signals::install`]ed),
//! or [`ServerHandle::request_shutdown`] sets one atomic flag. The
//! acceptor stops accepting and exits, which disconnects the stream
//! channel; each worker finishes the request it is on (including waiting
//! for its batch reply), notices the flag at the next request boundary,
//! and exits; only after every worker has dropped its job sender does the
//! job channel disconnect and the model thread return. The ordering
//! guarantees zero dropped in-flight requests.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use autoac_ckpt::ServeState;
use autoac_data::json::{self, Value};
use autoac_obs::{
    counter_add, flight_record, hist_record_ex, now_ns, warn, FlightKind, SloConfig, SloEngine,
};

use crate::batch::{BatchConfig, Job, JobTiming};
use crate::host::{current_view, SharedView, ViewSlot};
use crate::http::{read_request, write_response, write_response_with, ReadOutcome, Request};
use crate::trace::{tracing_enabled, Timeline, TraceIds, TraceStore};

/// Upper bound on node ids per classify/attrs request.
pub const MAX_NODES_PER_REQUEST: usize = 4096;

/// How many timelines `GET /debug/traces` returns (the slowest retained).
pub const DEBUG_TRACES_LIMIT: usize = 32;

const JSON_CT: &str = "application/json";
const PROM_CT: &str = "text/plain; version=0.0.4";

/// Server settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker (connection-handling) threads.
    pub workers: usize,
    /// Micro-batching knobs for the model thread.
    pub batch: BatchConfig,
    /// Seed for the trace-id mint: ids are a pure function of this seed
    /// and the accept order, independent of wall clock and OS entropy.
    pub trace_seed: u64,
    /// SLO objective and burn-rate windows for `/slo`.
    pub slo: SloConfig,
    /// Where `POST /admin/flight` writes `FLIGHT_<run>.jsonl`.
    pub flight_dir: std::path::PathBuf,
    /// Run label used in the flight dump filename and meta line.
    pub run: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            batch: BatchConfig::default(),
            trace_seed: 0xa07a_c0de_0000_0001,
            slo: SloConfig::default(),
            flight_dir: std::path::PathBuf::from("results"),
            run: "serve".into(),
        }
    }
}

/// Process-global signal → shutdown-flag bridge, opt-in via
/// [`signals::install`] (the `autoac_serve` binary installs it; library
/// users like tests and the benchmark typically don't).
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT and SIGTERM into the serving shutdown flag.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: installing a handler that only stores an atomic.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// No-op off unix.
    #[cfg(not(unix))]
    pub fn install() {}

    /// True once a routed signal has fired.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Everything a worker needs to serve requests.
#[derive(Clone)]
struct Ctx {
    slot: ViewSlot,
    jobs: Sender<Job>,
    shutdown: Arc<AtomicBool>,
    ids: Arc<TraceIds>,
    traces: Arc<TraceStore>,
    slo: Arc<SloEngine>,
    flight_dir: Arc<std::path::PathBuf>,
    run: Arc<String>,
}

impl Ctx {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::requested()
    }
}

/// A running server; dropping it (or calling [`ServerHandle::stop`])
/// shuts it down gracefully.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    model: Option<JoinHandle<()>>,
    /// Held only until `join`: dropping the last job sender is what lets
    /// the model thread exit.
    jobs: Option<Sender<Job>>,
}

/// Alias kept close to the docs' vocabulary.
pub type ServerHandle = Server;

impl Server {
    /// Binds, loads the checkpoint on the model thread, and returns once
    /// the server is ready to answer requests (or the checkpoint failed
    /// to load).
    pub fn start(state: ServeState, cfg: &ServeConfig) -> io::Result<Server> {
        // `/metrics` is part of the serving contract, so the obs registry
        // must record regardless of AUTOAC_OBS in the environment.
        autoac_obs::set_force(Some(true));
        // Strict-parse contract: malformed AUTOAC_TRACE / AUTOAC_FLIGHT
        // abort here, at startup, not lazily on a worker thread
        // mid-request.
        let _ = tracing_enabled();
        let _ = autoac_obs::flight_enabled();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let (ready_tx, ready_rx) = mpsc::channel();
        let batch = cfg.batch;
        let model = std::thread::Builder::new()
            .name("serve-model".into())
            .spawn(move || crate::batch::run_model_thread(state, batch, jobs_rx, ready_tx))?;
        let slot = match ready_rx.recv() {
            Ok(Ok(slot)) => slot,
            Ok(Err(e)) => {
                let _ = model.join();
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
            Err(_) => {
                let _ = model.join();
                return Err(io::Error::new(io::ErrorKind::Other, "model thread died during load"));
            }
        };

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let ctx = Ctx {
            slot,
            jobs: jobs_tx.clone(),
            shutdown: Arc::clone(&shutdown),
            ids: Arc::new(TraceIds::new(cfg.trace_seed)),
            traces: Arc::new(TraceStore::new()),
            slo: Arc::new(SloEngine::new(cfg.slo)),
            flight_dir: Arc::new(cfg.flight_dir.clone()),
            run: Arc::new(cfg.run.clone()),
        };
        flight_record(
            FlightKind::Lifecycle,
            0,
            u64::from(addr.port()),
            &format!("server ready on {addr}"),
        );

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let ctx = ctx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, ctx))?,
            );
        }

        let flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new().name("serve-accept".into()).spawn(move || {
            accept_loop(listener, conn_tx, flag);
        })?;

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            model: Some(model),
            jobs: Some(jobs_tx),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown without waiting.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to finish — it only does once shutdown is
    /// requested via flag, signal, or `POST /admin/shutdown`.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Requests shutdown and waits for completion.
    pub fn stop(self) {
        self.request_shutdown();
        self.join();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Last sender gone → model thread's channel disconnects → exits.
        self.jobs = None;
        if let Some(h) = self.model.take() {
            let _ = h.join();
            flight_record(FlightKind::Shutdown, 0, 0, "server stopped (all threads joined)");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join_inner();
    }
}

fn accept_loop(listener: TcpListener, conn_tx: Sender<TcpStream>, shutdown: Arc<AtomicBool>) {
    loop {
        if shutdown.load(Ordering::SeqCst) || signals::requested() {
            return; // drops conn_tx; workers drain the queue then exit
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are small and latency-bound; never Nagle them.
                let _ = stream.set_nodelay(true);
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                warn("serve", &format!("accept failed: {e}"));
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>, ctx: Ctx) {
    loop {
        // Holding the lock across `recv` is the classic shared-queue
        // pattern: exactly one idle worker waits, the rest park on the
        // mutex; disconnect (acceptor gone) wakes them all in turn.
        let stream = {
            let rx = conn_rx.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, &ctx),
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    if let Err(e) = stream.set_read_timeout(Some(Duration::from_millis(100))) {
        warn("serve", &format!("set_read_timeout failed: {e}"));
        return;
    }
    let mut buf = Vec::new();
    loop {
        match read_request(&mut stream, &mut buf, &ctx.ids) {
            Ok(ReadOutcome::Request(req)) => {
                let keep = req.keep_alive;
                if let Err(e) = route(&mut stream, &req, ctx) {
                    warn("serve", &format!("response write failed: {e}"));
                    return;
                }
                // A hammering keep-alive client never lets the stream go
                // idle, so the stopping check must also sit here or a
                // signal/`/admin/shutdown` could never finish joining.
                if !keep || ctx.stopping() {
                    return;
                }
            }
            Ok(ReadOutcome::Idle) => {
                if ctx.stopping() {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Bad(status, msg)) => {
                counter_add("serve_errors_total", 1);
                let _ = respond_error(&mut stream, status, msg, false);
                return;
            }
            Err(e) => {
                warn("serve", &format!("read failed: {e}"));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// The single request funnel: every route — success or error — leaves
/// through one response write, so the trace timeline, the SLO observation,
/// the flight-recorder request summary, and the latency exemplars are
/// recorded for *every* request exactly once.
fn route(stream: &mut TcpStream, req: &Request, ctx: &Ctx) -> io::Result<()> {
    counter_add("serve_requests_total", 1);
    let keep = req.keep_alive;
    let t0 = Instant::now();
    let mut nodes = 0usize;
    let mut timing = JobTiming::default();
    let outcome: Result<(&'static str, Vec<u8>), (u16, String)> =
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/classify") => classify(req, ctx).map(|(doc, t, n)| {
                timing = t;
                nodes = n;
                (JSON_CT, json::to_string(&doc).into_bytes())
            }),
            ("POST", "/v1/attrs") => attrs(req, ctx).map(|(doc, n)| {
                nodes = n;
                (JSON_CT, json::to_string(&doc).into_bytes())
            }),
            ("GET", "/healthz") => Ok((JSON_CT, json::to_string(&healthz(ctx)).into_bytes())),
            ("GET", "/metrics") => {
                // Publish SLO gauges into the registry first, so the
                // scrape that follows sees them.
                let _ = ctx.slo.export_gauges();
                Ok((PROM_CT, autoac_obs::snapshot().prom_dump().into_bytes()))
            }
            ("GET", "/debug/traces") => Ok((JSON_CT, debug_traces(ctx).into_bytes())),
            ("GET", "/slo") => {
                Ok((JSON_CT, json::to_string(&slo_doc(&ctx.slo.status())).into_bytes()))
            }
            ("POST", "/admin/flight") => {
                flight_dump(ctx).map(|doc| (JSON_CT, json::to_string(&doc).into_bytes()))
            }
            ("POST", "/admin/reload") => {
                reload(req, ctx).map(|doc| (JSON_CT, json::to_string(&doc).into_bytes()))
            }
            ("POST", "/admin/shutdown") => {
                flight_record(
                    FlightKind::Shutdown,
                    req.trace_id,
                    0,
                    "shutdown requested via POST /admin/shutdown",
                );
                ctx.shutdown.store(true, Ordering::SeqCst);
                let doc = Value::Obj(vec![("ok".into(), Value::Bool(true))]);
                Ok((JSON_CT, json::to_string(&doc).into_bytes()))
            }
            (
                _,
                "/v1/classify" | "/v1/attrs" | "/admin/reload" | "/admin/shutdown"
                | "/admin/flight",
            ) => Err((405, "use POST".to_string())),
            (_, "/healthz" | "/metrics" | "/slo" | "/debug/traces") => {
                Err((405, "use GET".to_string()))
            }
            _ => Err((404, format!("no route for {}", req.path))),
        };
    let (status, ctype, body) = match outcome {
        Ok((ct, b)) => (200, ct, b),
        Err((status, msg)) => {
            counter_add("serve_errors_total", 1);
            let b = json::to_string(&Value::Obj(vec![("error".into(), Value::Str(msg))]));
            (status, JSON_CT, b.into_bytes())
        }
    };
    let hist = match req.path.as_str() {
        "/v1/classify" => "serve_classify_ns",
        "/v1/attrs" => "serve_attrs_ns",
        "/metrics" => "serve_metrics_ns",
        _ => "serve_other_ns",
    };
    hist_record_ex(hist, t0.elapsed().as_nanos() as f64, req.trace_id);
    if timing.batch_size > 0 {
        hist_record_ex("serve_queue_wait_ns", timing.queue_ns as f64, req.trace_id);
        hist_record_ex("serve_batch_wait_ns", timing.batch_wait_ns as f64, req.trace_id);
        hist_record_ex("serve_compute_ns", timing.compute_ns as f64, req.trace_id);
    }
    let mut extra: Vec<(&str, String)> = Vec::new();
    if req.trace_id != 0 {
        extra.push(("x-autoac-trace", format!("{:016x}", req.trace_id)));
    }
    let write_start = Instant::now();
    let res = write_response_with(stream, status, ctype, &body, keep, &extra);
    let write_ns = write_start.elapsed().as_nanos() as u64;
    let total_ns = now_ns().saturating_sub(req.t0_ns);
    ctx.slo.observe(total_ns as f64, status >= 500);
    flight_record(
        FlightKind::Request,
        req.trace_id,
        total_ns,
        &format!("{status} {} {}", req.method, req.path),
    );
    if req.trace_id != 0 {
        ctx.traces.push(Timeline {
            trace_id: req.trace_id,
            t0_ns: req.t0_ns,
            method: req.method.clone(),
            path: req.path.clone(),
            status,
            nodes,
            batch_size: timing.batch_size,
            parse_ns: req.parse_ns,
            queue_ns: timing.queue_ns,
            batch_wait_ns: timing.batch_wait_ns,
            compute_ns: timing.compute_ns,
            write_ns,
            total_ns,
        });
    }
    res
}

/// `GET /debug/traces` body: the slowest retained timelines, slowest
/// first, serialized by [`Timeline::to_json`].
fn debug_traces(ctx: &Ctx) -> String {
    let items: Vec<String> =
        ctx.traces.slowest(DEBUG_TRACES_LIMIT).iter().map(Timeline::to_json).collect();
    format!("{{\"count\":{},\"traces\":[{}]}}", items.len(), items.join(","))
}

fn window_doc(w: &autoac_obs::WindowStat) -> Value {
    // /slo is strict JSON: quantiles over an empty window are NaN, which
    // the encoder would print as null — map them to 0 like the gauges do.
    let fin = |v: f64| Value::Num(if v.is_finite() { v } else { 0.0 });
    Value::Obj(vec![
        ("ticks".into(), Value::Num(w.ticks as f64)),
        ("total".into(), Value::Num(w.total as f64)),
        ("errors".into(), Value::Num(w.errors as f64)),
        ("bad".into(), Value::Num(w.bad as f64)),
        ("error_rate".into(), fin(w.error_rate)),
        ("bad_rate".into(), fin(w.bad_rate)),
        ("burn_rate".into(), fin(w.burn_rate)),
        ("p50_ns".into(), fin(w.p50_ns)),
        ("p90_ns".into(), fin(w.p90_ns)),
        ("p99_ns".into(), fin(w.p99_ns)),
    ])
}

fn slo_doc(s: &autoac_obs::SloStatus) -> Value {
    Value::Obj(vec![
        ("objective_ns".into(), Value::Num(s.objective_ns)),
        ("target".into(), Value::Num(s.target)),
        ("burn_fast_threshold".into(), Value::Num(s.burn_fast_threshold)),
        ("burn_slow_threshold".into(), Value::Num(s.burn_slow_threshold)),
        ("firing".into(), Value::Bool(s.firing)),
        ("fast".into(), window_doc(&s.fast)),
        ("slow".into(), window_doc(&s.slow)),
    ])
}

/// `POST /admin/flight`: dumps the ring to `FLIGHT_<run>.jsonl` under the
/// configured directory and reports where it went.
fn flight_dump(ctx: &Ctx) -> Result<Value, (u16, String)> {
    match autoac_obs::flight_dump_to(&ctx.flight_dir, &ctx.run) {
        Ok((path, records)) => Ok(Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("path".into(), Value::Str(path.display().to_string())),
            ("records".into(), Value::Num(records as f64)),
        ])),
        Err(e) => Err((500, format!("flight dump failed: {e}"))),
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, msg: &str, keep: bool) -> io::Result<()> {
    let body = json::to_string(&Value::Obj(vec![("error".into(), Value::Str(msg.into()))]));
    write_response(stream, status, "application/json", body.as_bytes(), keep)
}

type Handled = Result<Value, (u16, String)>;

/// Parses and bounds-checks the `{"nodes": [...]}` request body.
fn parse_nodes(body: &[u8], view: &SharedView) -> Result<Vec<usize>, (u16, String)> {
    let text = std::str::from_utf8(body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let doc = json::parse(text).map_err(|e| (400, format!("bad json: {e}")))?;
    let nodes = doc
        .get("nodes")
        .and_then(Value::as_arr)
        .ok_or_else(|| (400, "body must be an object with a \"nodes\" array".to_string()))?;
    if nodes.is_empty() {
        return Err((400, "\"nodes\" must not be empty".to_string()));
    }
    if nodes.len() > MAX_NODES_PER_REQUEST {
        return Err((400, format!("at most {MAX_NODES_PER_REQUEST} nodes per request")));
    }
    nodes
        .iter()
        .map(|v| match v.as_usize() {
            Some(n) if n < view.num_nodes => Ok(n),
            Some(n) => Err((400, format!("node {n} out of range (graph has {})", view.num_nodes))),
            None => Err((400, "node ids must be non-negative integers".to_string())),
        })
        .collect()
}

fn classify(req: &Request, ctx: &Ctx) -> Result<(Value, JobTiming, usize), (u16, String)> {
    let view = current_view(&ctx.slot);
    let nodes = parse_nodes(&req.body, &view)?;
    let node_count = nodes.len();
    let (reply_tx, reply_rx) = mpsc::channel();
    ctx.jobs
        .send(Job::Classify {
            nodes,
            reply: reply_tx,
            trace_id: req.trace_id,
            enqueued_ns: now_ns(),
        })
        .map_err(|_| (503, "model thread unavailable".to_string()))?;
    let reply = reply_rx.recv().map_err(|_| (503, "model thread unavailable".to_string()))?;
    let results = reply
        .rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("node".into(), Value::Num(r.node as f64)),
                ("label".into(), Value::Num(r.label as f64)),
                ("logits".into(), Value::Arr(r.logits.iter().map(|&v| Value::Num(v as f64)).collect())),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("ckpt".into(), Value::Str(reply.ckpt)),
        ("results".into(), Value::Arr(results)),
    ]);
    Ok((doc, reply.timing, node_count))
}

fn attrs(req: &Request, ctx: &Ctx) -> Result<(Value, usize), (u16, String)> {
    let view = current_view(&ctx.slot);
    let nodes = parse_nodes(&req.body, &view)?;
    let node_count = nodes.len();
    let results = nodes
        .iter()
        .map(|&n| {
            // Bounds were checked against this same view.
            let row = view.attr_row(n).unwrap_or(&[]);
            Value::Obj(vec![
                ("node".into(), Value::Num(n as f64)),
                ("attrs".into(), Value::Arr(row.iter().map(|&v| Value::Num(v as f64)).collect())),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("ckpt".into(), Value::Str(view.info.config_fp_hex.clone())),
        ("dim".into(), Value::Num(view.attr_dim as f64)),
        ("results".into(), Value::Arr(results)),
    ]);
    Ok((doc, node_count))
}

fn healthz(ctx: &Ctx) -> Value {
    let view = current_view(&ctx.slot);
    Value::Obj(vec![
        ("status".into(), Value::Str("ok".into())),
        ("ckpt".into(), Value::Str(view.info.config_fp_hex.clone())),
        ("backbone".into(), Value::Str(view.info.backbone.clone())),
        ("preset".into(), Value::Str(view.info.preset.clone())),
        ("nodes".into(), Value::Num(view.num_nodes as f64)),
        ("classes".into(), Value::Num(view.num_classes as f64)),
        ("attr_dim".into(), Value::Num(view.attr_dim as f64)),
        ("epochs".into(), Value::Num(view.info.epochs_done as f64)),
        ("macro_f1".into(), Value::Num(view.info.macro_f1)),
        ("micro_f1".into(), Value::Num(view.info.micro_f1)),
    ])
}

fn reload(req: &Request, ctx: &Ctx) -> Handled {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let doc = json::parse(text).map_err(|e| (400, format!("bad json: {e}")))?;
    let path = doc
        .get("checkpoint")
        .and_then(Value::as_str)
        .ok_or_else(|| (400, "body must carry a \"checkpoint\" path".to_string()))?;
    let state = ServeState::read(std::path::Path::new(path))
        .map_err(|e| (400, format!("cannot load checkpoint: {e}")))?;
    let (reply_tx, reply_rx) = mpsc::channel();
    ctx.jobs
        .send(Job::Reload { state: Box::new(state), reply: reply_tx })
        .map_err(|_| (503, "model thread unavailable".to_string()))?;
    match reply_rx.recv() {
        Ok(Ok(info)) => Ok(Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("ckpt".into(), Value::Str(info.config_fp_hex)),
        ])),
        Ok(Err(msg)) => Err((409, msg)),
        Err(_) => Err((503, "model thread unavailable".to_string())),
    }
}
