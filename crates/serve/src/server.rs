//! The server proper: acceptor, worker pool, routing, and lifecycle.
//!
//! ## Thread layout
//!
//! ```text
//!  acceptor ──streams──▶ workers (N) ──Job──▶ model thread (1)
//!     │                     │  ▲                  │
//!     │ nonblocking poll    │  └── per-job reply ─┘
//!     ▼                     ▼
//!  shutdown flag      SharedView slot (Arc swap, read-only endpoints)
//! ```
//!
//! ## Graceful shutdown
//!
//! `POST /admin/shutdown`, a SIGINT/SIGTERM (when [`signals::install`]ed),
//! or [`ServerHandle::request_shutdown`] sets one atomic flag. The
//! acceptor stops accepting and exits, which disconnects the stream
//! channel; each worker finishes the request it is on (including waiting
//! for its batch reply), notices the flag at the next request boundary,
//! and exits; only after every worker has dropped its job sender does the
//! job channel disconnect and the model thread return. The ordering
//! guarantees zero dropped in-flight requests.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use autoac_ckpt::ServeState;
use autoac_data::json::{self, Value};
use autoac_obs::{counter_add, hist_record, warn};

use crate::batch::{BatchConfig, Job};
use crate::host::{current_view, SharedView, ViewSlot};
use crate::http::{read_request, write_response, ReadOutcome, Request};

/// Upper bound on node ids per classify/attrs request.
pub const MAX_NODES_PER_REQUEST: usize = 4096;

/// Server settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker (connection-handling) threads.
    pub workers: usize,
    /// Micro-batching knobs for the model thread.
    pub batch: BatchConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:0".into(), workers: 4, batch: BatchConfig::default() }
    }
}

/// Process-global signal → shutdown-flag bridge, opt-in via
/// [`signals::install`] (the `autoac_serve` binary installs it; library
/// users like tests and the benchmark typically don't).
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT and SIGTERM into the serving shutdown flag.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: installing a handler that only stores an atomic.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// No-op off unix.
    #[cfg(not(unix))]
    pub fn install() {}

    /// True once a routed signal has fired.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Everything a worker needs to serve requests.
#[derive(Clone)]
struct Ctx {
    slot: ViewSlot,
    jobs: Sender<Job>,
    shutdown: Arc<AtomicBool>,
}

impl Ctx {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::requested()
    }
}

/// A running server; dropping it (or calling [`ServerHandle::stop`])
/// shuts it down gracefully.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    model: Option<JoinHandle<()>>,
    /// Held only until `join`: dropping the last job sender is what lets
    /// the model thread exit.
    jobs: Option<Sender<Job>>,
}

/// Alias kept close to the docs' vocabulary.
pub type ServerHandle = Server;

impl Server {
    /// Binds, loads the checkpoint on the model thread, and returns once
    /// the server is ready to answer requests (or the checkpoint failed
    /// to load).
    pub fn start(state: ServeState, cfg: &ServeConfig) -> io::Result<Server> {
        // `/metrics` is part of the serving contract, so the obs registry
        // must record regardless of AUTOAC_OBS in the environment.
        autoac_obs::set_force(Some(true));
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let (ready_tx, ready_rx) = mpsc::channel();
        let batch = cfg.batch;
        let model = std::thread::Builder::new()
            .name("serve-model".into())
            .spawn(move || crate::batch::run_model_thread(state, batch, jobs_rx, ready_tx))?;
        let slot = match ready_rx.recv() {
            Ok(Ok(slot)) => slot,
            Ok(Err(e)) => {
                let _ = model.join();
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
            Err(_) => {
                let _ = model.join();
                return Err(io::Error::new(io::ErrorKind::Other, "model thread died during load"));
            }
        };

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let ctx = Ctx { slot, jobs: jobs_tx.clone(), shutdown: Arc::clone(&shutdown) };

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let ctx = ctx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, ctx))?,
            );
        }

        let flag = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new().name("serve-accept".into()).spawn(move || {
            accept_loop(listener, conn_tx, flag);
        })?;

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            model: Some(model),
            jobs: Some(jobs_tx),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown without waiting.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to finish — it only does once shutdown is
    /// requested via flag, signal, or `POST /admin/shutdown`.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Requests shutdown and waits for completion.
    pub fn stop(self) {
        self.request_shutdown();
        self.join();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Last sender gone → model thread's channel disconnects → exits.
        self.jobs = None;
        if let Some(h) = self.model.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join_inner();
    }
}

fn accept_loop(listener: TcpListener, conn_tx: Sender<TcpStream>, shutdown: Arc<AtomicBool>) {
    loop {
        if shutdown.load(Ordering::SeqCst) || signals::requested() {
            return; // drops conn_tx; workers drain the queue then exit
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are small and latency-bound; never Nagle them.
                let _ = stream.set_nodelay(true);
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                warn("serve", &format!("accept failed: {e}"));
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(conn_rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>, ctx: Ctx) {
    loop {
        // Holding the lock across `recv` is the classic shared-queue
        // pattern: exactly one idle worker waits, the rest park on the
        // mutex; disconnect (acceptor gone) wakes them all in turn.
        let stream = {
            let rx = conn_rx.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, &ctx),
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) {
    if let Err(e) = stream.set_read_timeout(Some(Duration::from_millis(100))) {
        warn("serve", &format!("set_read_timeout failed: {e}"));
        return;
    }
    let mut buf = Vec::new();
    loop {
        match read_request(&mut stream, &mut buf) {
            Ok(ReadOutcome::Request(req)) => {
                let keep = req.keep_alive;
                if let Err(e) = route(&mut stream, &req, ctx) {
                    warn("serve", &format!("response write failed: {e}"));
                    return;
                }
                if !keep {
                    return;
                }
            }
            Ok(ReadOutcome::Idle) => {
                if ctx.stopping() {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Bad(status, msg)) => {
                counter_add("serve_errors_total", 1);
                let _ = respond_error(&mut stream, status, msg, false);
                return;
            }
            Err(e) => {
                warn("serve", &format!("read failed: {e}"));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn route(stream: &mut TcpStream, req: &Request, ctx: &Ctx) -> io::Result<()> {
    counter_add("serve_requests_total", 1);
    let keep = req.keep_alive;
    let t0 = Instant::now();
    let outcome = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/classify") => classify(req, ctx),
        ("POST", "/v1/attrs") => attrs(req, ctx),
        ("GET", "/healthz") => Ok(healthz(ctx)),
        ("GET", "/metrics") => {
            let text = autoac_obs::snapshot().prom_dump();
            hist_record("serve_metrics_ns", t0.elapsed().as_nanos() as f64);
            return write_response(stream, 200, "text/plain; version=0.0.4", text.as_bytes(), keep);
        }
        ("POST", "/admin/reload") => reload(req, ctx),
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Ok(Value::Obj(vec![("ok".into(), Value::Bool(true))]))
        }
        (_, "/v1/classify" | "/v1/attrs" | "/admin/reload" | "/admin/shutdown") => {
            Err((405, "use POST".to_string()))
        }
        (_, "/healthz" | "/metrics") => Err((405, "use GET".to_string())),
        _ => Err((404, format!("no route for {}", req.path))),
    };
    match outcome {
        Ok(doc) => {
            let body = json::to_string(&doc);
            let hist = match req.path.as_str() {
                "/v1/classify" => "serve_classify_ns",
                "/v1/attrs" => "serve_attrs_ns",
                _ => "serve_other_ns",
            };
            hist_record(hist, t0.elapsed().as_nanos() as f64);
            write_response(stream, 200, "application/json", body.as_bytes(), keep)
        }
        Err((status, msg)) => {
            counter_add("serve_errors_total", 1);
            respond_error(stream, status, &msg, keep)
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, msg: &str, keep: bool) -> io::Result<()> {
    let body = json::to_string(&Value::Obj(vec![("error".into(), Value::Str(msg.into()))]));
    write_response(stream, status, "application/json", body.as_bytes(), keep)
}

type Handled = Result<Value, (u16, String)>;

/// Parses and bounds-checks the `{"nodes": [...]}` request body.
fn parse_nodes(body: &[u8], view: &SharedView) -> Result<Vec<usize>, (u16, String)> {
    let text = std::str::from_utf8(body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let doc = json::parse(text).map_err(|e| (400, format!("bad json: {e}")))?;
    let nodes = doc
        .get("nodes")
        .and_then(Value::as_arr)
        .ok_or_else(|| (400, "body must be an object with a \"nodes\" array".to_string()))?;
    if nodes.is_empty() {
        return Err((400, "\"nodes\" must not be empty".to_string()));
    }
    if nodes.len() > MAX_NODES_PER_REQUEST {
        return Err((400, format!("at most {MAX_NODES_PER_REQUEST} nodes per request")));
    }
    nodes
        .iter()
        .map(|v| match v.as_usize() {
            Some(n) if n < view.num_nodes => Ok(n),
            Some(n) => Err((400, format!("node {n} out of range (graph has {})", view.num_nodes))),
            None => Err((400, "node ids must be non-negative integers".to_string())),
        })
        .collect()
}

fn classify(req: &Request, ctx: &Ctx) -> Handled {
    let view = current_view(&ctx.slot);
    let nodes = parse_nodes(&req.body, &view)?;
    let (reply_tx, reply_rx) = mpsc::channel();
    ctx.jobs
        .send(Job::Classify { nodes, reply: reply_tx })
        .map_err(|_| (503, "model thread unavailable".to_string()))?;
    let reply = reply_rx.recv().map_err(|_| (503, "model thread unavailable".to_string()))?;
    let results = reply
        .rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("node".into(), Value::Num(r.node as f64)),
                ("label".into(), Value::Num(r.label as f64)),
                ("logits".into(), Value::Arr(r.logits.iter().map(|&v| Value::Num(v as f64)).collect())),
            ])
        })
        .collect();
    Ok(Value::Obj(vec![
        ("ckpt".into(), Value::Str(reply.ckpt)),
        ("results".into(), Value::Arr(results)),
    ]))
}

fn attrs(req: &Request, ctx: &Ctx) -> Handled {
    let view = current_view(&ctx.slot);
    let nodes = parse_nodes(&req.body, &view)?;
    let results = nodes
        .iter()
        .map(|&n| {
            // Bounds were checked against this same view.
            let row = view.attr_row(n).unwrap_or(&[]);
            Value::Obj(vec![
                ("node".into(), Value::Num(n as f64)),
                ("attrs".into(), Value::Arr(row.iter().map(|&v| Value::Num(v as f64)).collect())),
            ])
        })
        .collect();
    Ok(Value::Obj(vec![
        ("ckpt".into(), Value::Str(view.info.config_fp_hex.clone())),
        ("dim".into(), Value::Num(view.attr_dim as f64)),
        ("results".into(), Value::Arr(results)),
    ]))
}

fn healthz(ctx: &Ctx) -> Value {
    let view = current_view(&ctx.slot);
    Value::Obj(vec![
        ("status".into(), Value::Str("ok".into())),
        ("ckpt".into(), Value::Str(view.info.config_fp_hex.clone())),
        ("backbone".into(), Value::Str(view.info.backbone.clone())),
        ("preset".into(), Value::Str(view.info.preset.clone())),
        ("nodes".into(), Value::Num(view.num_nodes as f64)),
        ("classes".into(), Value::Num(view.num_classes as f64)),
        ("attr_dim".into(), Value::Num(view.attr_dim as f64)),
        ("epochs".into(), Value::Num(view.info.epochs_done as f64)),
        ("macro_f1".into(), Value::Num(view.info.macro_f1)),
        ("micro_f1".into(), Value::Num(view.info.micro_f1)),
    ])
}

fn reload(req: &Request, ctx: &Ctx) -> Handled {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| (400, "body is not utf-8".to_string()))?;
    let doc = json::parse(text).map_err(|e| (400, format!("bad json: {e}")))?;
    let path = doc
        .get("checkpoint")
        .and_then(Value::as_str)
        .ok_or_else(|| (400, "body must carry a \"checkpoint\" path".to_string()))?;
    let state = ServeState::read(std::path::Path::new(path))
        .map_err(|e| (400, format!("cannot load checkpoint: {e}")))?;
    let (reply_tx, reply_rx) = mpsc::channel();
    ctx.jobs
        .send(Job::Reload { state: Box::new(state), reply: reply_tx })
        .map_err(|_| (503, "model thread unavailable".to_string()))?;
    match reply_rx.recv() {
        Ok(Ok(info)) => Ok(Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("ckpt".into(), Value::Str(info.config_fp_hex)),
        ])),
        Ok(Err(msg)) => Err((409, msg)),
        Err(_) => Err((503, "model thread unavailable".to_string())),
    }
}
