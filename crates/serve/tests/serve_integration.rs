//! End-to-end serving tests over real sockets: batched-vs-single bitwise
//! identity, hot-reload under sustained concurrent load with zero dropped
//! requests, endpoint coverage, and graceful shutdown.

use std::sync::Arc;
use std::thread;

use autoac_ckpt::ServeState;
use autoac_core::{train_serve_state, InferenceModel, ServeTrainSpec, TrainConfig};
use autoac_data::json::{self, Value};
use autoac_serve::{BatchConfig, Client, ServeConfig, Server};

fn quick_state(seed: u64) -> ServeState {
    let spec = ServeTrainSpec {
        train: TrainConfig { epochs: 2, patience: 2, ..Default::default() },
        seed,
        ..Default::default()
    };
    train_serve_state(&spec).expect("train").0
}

fn server(state: ServeState, batching: bool) -> Server {
    let cfg = ServeConfig {
        workers: 4,
        batch: BatchConfig { batching, ..Default::default() },
        ..Default::default()
    };
    Server::start(state, &cfg).expect("start server")
}

fn nodes_body(nodes: &[usize]) -> String {
    let ids: Vec<String> = nodes.iter().map(usize::to_string).collect();
    format!("{{\"nodes\":[{}]}}", ids.join(","))
}

#[test]
fn batched_responses_are_bitwise_identical_to_single_requests() {
    let state = quick_state(11);
    let num_nodes = InferenceModel::from_state(&state).expect("load").num_nodes();
    let batched = server(state.clone(), true);
    let unbatched = server(state, false);

    let sets: Vec<Vec<usize>> =
        (0..16).map(|i| vec![i % num_nodes, (i * 7 + 1) % num_nodes]).collect();

    // Singles against the batching-disabled server: the per-request
    // forward baseline.
    let mut single = Vec::new();
    {
        let mut c = Client::connect(unbatched.addr()).expect("connect");
        for s in &sets {
            let r = c.post("/v1/classify", &nodes_body(s)).expect("post");
            assert_eq!(r.status, 200);
            single.push(r.text());
        }
    }

    // The same sets fired concurrently at the batching server, twice, so
    // requests genuinely coalesce.
    for _round in 0..2 {
        let addr = batched.addr();
        let handles: Vec<_> = sets
            .iter()
            .cloned()
            .map(|s| {
                thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let r = c.post("/v1/classify", &nodes_body(&s)).expect("post");
                    assert_eq!(r.status, 200);
                    r.text()
                })
            })
            .collect();
        for (h, want) in handles.into_iter().zip(&single) {
            let got = h.join().expect("client thread");
            assert_eq!(&got, want, "batched response must be bitwise identical");
        }
    }

    batched.stop();
    unbatched.stop();
}

#[test]
fn hot_reload_under_sustained_load_drops_nothing() {
    // Same dataset recipe (graph), independently trained models.
    let state_a = quick_state(21);
    let state_b = quick_state(22);
    let hex_a = format!("{:016x}", state_a.meta.config_fp);
    let hex_b = format!("{:016x}", state_b.meta.config_fp);
    assert_ne!(hex_a, hex_b);

    let dir = std::env::temp_dir().join(format!("autoac_serve_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path_b = dir.join("b.ckpt");
    state_b.write_atomic(&path_b).expect("write ckpt");

    let num_nodes = InferenceModel::from_state(&state_a).expect("load").num_nodes();
    let srv = server(state_a, true);
    let addr = srv.addr();

    let sets: Vec<Vec<usize>> = (0..8).map(|i| vec![i % num_nodes, (i + 3) % num_nodes]).collect();

    // Canonical per-checkpoint bodies, captured while each checkpoint is
    // (or will be) resident.
    let mut canon_a = Vec::new();
    {
        let mut c = Client::connect(addr).expect("connect");
        for s in &sets {
            canon_a.push(c.post("/v1/classify", &nodes_body(s)).expect("post").text());
        }
    }

    // Sustained closed-loop load from 6 clients while the swap happens.
    let sets = Arc::new(sets);
    let clients: Vec<_> = (0..6)
        .map(|ci| {
            let sets = Arc::clone(&sets);
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut out = Vec::new();
                for i in 0..60 {
                    let set_idx = (ci + i) % sets.len();
                    let r = c.post("/v1/classify", &nodes_body(&sets[set_idx])).expect("post");
                    out.push((set_idx, r.status, r.text()));
                }
                out
            })
        })
        .collect();

    // Swap to checkpoint B mid-load.
    thread::sleep(std::time::Duration::from_millis(30));
    let ack = {
        let mut c = Client::connect(addr).expect("connect");
        let body = format!("{{\"checkpoint\":{}}}", json::to_string(&Value::Str(
            path_b.display().to_string(),
        )));
        let r = c.post("/admin/reload", &body).expect("reload");
        assert_eq!(r.status, 200, "{}", r.text());
        r.text()
    };
    assert!(ack.contains(&hex_b), "reload ack must carry the new fingerprint: {ack}");

    // After the ack, a fresh request must be served by B.
    let mut canon_b = Vec::new();
    {
        let mut c = Client::connect(addr).expect("connect");
        for s in sets.iter() {
            let r = c.post("/v1/classify", &nodes_body(s)).expect("post");
            assert!(r.text().contains(&hex_b), "post-ack responses must come from B");
            canon_b.push(r.text());
        }
    }

    let mut from_a = 0usize;
    let mut from_b = 0usize;
    for h in clients {
        for (set_idx, status, body) in h.join().expect("client thread") {
            assert_eq!(status, 200, "no request may error across the swap: {body}");
            if body == canon_a[set_idx] {
                from_a += 1;
            } else if body == canon_b[set_idx] {
                from_b += 1;
            } else {
                panic!("response matches neither checkpoint bitwise: {body}");
            }
        }
    }
    assert_eq!(from_a + from_b, 6 * 60, "every request answered");
    assert!(from_b > 0, "some responses must come from the new checkpoint");

    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_only_endpoints_serve_from_the_shared_view() {
    let state = quick_state(31);
    let model = InferenceModel::from_state(&state).expect("load");
    let hex = model.info().config_fp_hex.clone();
    let srv = server(state, true);
    let mut c = Client::connect(srv.addr()).expect("connect");

    // /healthz carries identity and shape.
    let h = c.get("/healthz").expect("healthz");
    assert_eq!(h.status, 200);
    let doc = json::parse(&h.text()).expect("healthz json");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(doc.get("ckpt").and_then(Value::as_str), Some(hex.as_str()));
    assert_eq!(doc.get("nodes").and_then(Value::as_usize), Some(model.num_nodes()));
    assert_eq!(doc.get("classes").and_then(Value::as_usize), Some(model.num_classes()));

    // /v1/attrs rows are the materialized completion, bit-for-bit.
    let a = c.post("/v1/attrs", &nodes_body(&[0, 5])).expect("attrs");
    assert_eq!(a.status, 200);
    let doc = json::parse(&a.text()).expect("attrs json");
    let results = doc.get("results").and_then(Value::as_arr).expect("results");
    for (r, &node) in results.iter().zip(&[0usize, 5]) {
        let got: Vec<f32> = r
            .get("attrs")
            .and_then(Value::as_arr)
            .expect("attrs row")
            .iter()
            .map(|v| v.as_f64().expect("num") as f32)
            .collect();
        assert_eq!(got, model.attrs().row(node), "attr row {node} must be bit-exact");
    }

    // /metrics is Prometheus exposition text with serving series.
    let m = c.get("/metrics").expect("metrics");
    assert_eq!(m.status, 200);
    let text = m.text();
    assert!(text.contains("# TYPE autoac_serve_requests_total counter"), "{text}");
    assert!(text.contains("autoac_serve_classify_ns_count"), "{text}");

    // Errors are JSON with the right statuses.
    assert_eq!(c.get("/nope").expect("404").status, 404);
    assert_eq!(c.get("/v1/classify").expect("405").status, 405);
    assert_eq!(c.post("/v1/classify", "{").expect("400").status, 400);
    assert_eq!(c.post("/v1/classify", "{\"nodes\":[999999]}").expect("range").status, 400);
    assert_eq!(c.post("/v1/classify", "{\"nodes\":[]}").expect("empty").status, 400);

    srv.stop();
}

#[test]
fn admin_shutdown_is_graceful() {
    let state = quick_state(41);
    let srv = server(state, true);
    let addr = srv.addr();
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(c.post("/v1/classify", &nodes_body(&[0])).expect("warm").status, 200);
    let r = c.post("/admin/shutdown", "{}").expect("shutdown");
    assert_eq!(r.status, 200);
    // join() returns only when acceptor, workers, and model thread have
    // all exited — i.e. the shutdown actually propagated.
    srv.join();
}
