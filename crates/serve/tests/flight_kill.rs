//! Kills a real `autoac_serve` process (SIGTERM) while it is under
//! classify load and asserts the flight recorder leaves a complete,
//! strictly-parseable `FLIGHT_<run>.jsonl` post-mortem behind.

#![cfg(unix)]

use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use autoac_core::{train_serve_state, ServeTrainSpec, TrainConfig};
use autoac_data::json::{self, Value};
use autoac_serve::Client;

#[test]
fn sigterm_under_load_leaves_a_parseable_flight_dump() {
    let dir = std::env::temp_dir().join(format!("autoac_flight_kill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("model.ckpt");
    let spec = ServeTrainSpec {
        train: TrainConfig { epochs: 2, patience: 2, ..Default::default() },
        seed: 71,
        ..Default::default()
    };
    train_serve_state(&spec).expect("train").0.write_atomic(&ckpt).expect("write ckpt");

    let port_file = dir.join("port");
    let mut child = Command::new(env!("CARGO_BIN_EXE_autoac_serve"))
        .args([
            "--checkpoint",
            &ckpt.display().to_string(),
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            &port_file.display().to_string(),
            "--flight-dir",
            &dir.display().to_string(),
            "--run",
            "kill",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn autoac_serve");

    // The port file is written only once the server is ready.
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    };

    // Closed-loop load from three clients; they keep firing until the
    // process dies under them (errors past that point are expected).
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let Ok(mut c) = Client::connect(&*addr) else { break };
                    let body = format!("{{\"nodes\":[{},{}]}}", i, i + 1);
                    while !stop.load(Ordering::Relaxed) {
                        match c.post("/v1/classify", &body) {
                            Ok(r) if r.status == 200 => ok += 1,
                            _ => break,
                        }
                    }
                }
                ok
            })
        })
        .collect();

    // Let some load land, then SIGTERM mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -TERM failed");

    let status = child.wait().expect("wait");
    stop.store(true, Ordering::Relaxed);
    let served: usize = loaders.into_iter().map(|h| h.join().expect("loader")).sum();
    assert!(served > 0, "load must have landed before the kill");
    assert!(status.success(), "SIGTERM is a graceful exit, got {status:?}");

    // The dump exists, every line is strict JSON, and the load shows up.
    let dump_path = dir.join("FLIGHT_kill.jsonl");
    let dump = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", dump_path.display()));
    let mut requests = 0usize;
    for (i, line) in dump.lines().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}: {line}"));
        if i == 0 {
            assert_eq!(v.get("kind").and_then(Value::as_str), Some("flight"));
            assert!(v.get("capacity").and_then(Value::as_f64).expect("capacity") > 0.0);
        } else if v.get("kind").and_then(Value::as_str) == Some("request") {
            requests += 1;
        }
    }
    assert!(requests > 0, "request summaries survived the kill");

    let _ = std::fs::remove_dir_all(&dir);
}
