//! End-to-end observability tests: tracing on/off bitwise body identity,
//! the `x-autoac-trace` echo, `/debug/traces` timelines with stage
//! timings, `/slo` burn-rate status, and `POST /admin/flight` dumps.

use std::sync::{Mutex, MutexGuard};

use autoac_ckpt::ServeState;
use autoac_core::{train_serve_state, ServeTrainSpec, TrainConfig};
use autoac_data::json::{self, Value};
use autoac_serve::{set_trace_force, BatchConfig, Client, ServeConfig, Server};

/// `set_trace_force` is process-global; tests in this binary run on
/// parallel threads, so every test serializes on this.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn quick_state(seed: u64) -> ServeState {
    let spec = ServeTrainSpec {
        train: TrainConfig { epochs: 2, patience: 2, ..Default::default() },
        seed,
        ..Default::default()
    };
    train_serve_state(&spec).expect("train").0
}

fn nodes_body(nodes: &[usize]) -> String {
    let ids: Vec<String> = nodes.iter().map(usize::to_string).collect();
    format!("{{\"nodes\":[{}]}}", ids.join(","))
}

fn server_in(dir: &std::path::Path, run: &str, state: ServeState) -> Server {
    let cfg = ServeConfig {
        workers: 2,
        batch: BatchConfig::default(),
        flight_dir: dir.to_path_buf(),
        run: run.into(),
        ..Default::default()
    };
    Server::start(state, &cfg).expect("start server")
}

#[test]
fn tracing_off_bodies_are_bitwise_identical_to_tracing_on() {
    let _serial = lock();
    let state = quick_state(61);
    let dir = std::env::temp_dir().join(format!("autoac_trace_ab_{}", std::process::id()));
    let sets: Vec<Vec<usize>> = (0..6).map(|i| vec![i, i + 2]).collect();

    set_trace_force(Some(true));
    let mut traced = Vec::new();
    {
        let srv = server_in(&dir, "on", state.clone());
        let mut c = Client::connect(srv.addr()).expect("connect");
        for s in &sets {
            let r = c.post("/v1/classify", &nodes_body(s)).expect("post");
            assert_eq!(r.status, 200);
            assert!(r.trace_id().is_some(), "traced request echoes x-autoac-trace");
            traced.push(r.text());
        }
        srv.stop();
    }

    set_trace_force(Some(false));
    {
        let srv = server_in(&dir, "off", state);
        let mut c = Client::connect(srv.addr()).expect("connect");
        for (s, want) in sets.iter().zip(&traced) {
            let r = c.post("/v1/classify", &nodes_body(s)).expect("post");
            assert_eq!(r.status, 200);
            assert!(r.trace_id().is_none(), "untraced request carries no trace header");
            assert_eq!(&r.text(), want, "bodies must be bitwise identical tracing on vs off");
        }
        srv.stop();
    }
    set_trace_force(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_traces_slo_and_flight_dump_work_end_to_end() {
    let _serial = lock();
    set_trace_force(Some(true));
    let dir = std::env::temp_dir().join(format!("autoac_trace_e2e_{}", std::process::id()));
    let srv = server_in(&dir, "e2e", quick_state(62));
    let mut c = Client::connect(srv.addr()).expect("connect");

    let mut echoed = Vec::new();
    for i in 0..10usize {
        let r = c.post("/v1/classify", &nodes_body(&[i, i + 1])).expect("post");
        assert_eq!(r.status, 200);
        echoed.push(r.trace_id().expect("traced"));
    }

    // /debug/traces: non-empty, slowest-first, stage fields present, and
    // the ids we saw in response headers are resolvable.
    let t = c.get("/debug/traces").expect("traces");
    assert_eq!(t.status, 200);
    let doc = json::parse(&t.text()).expect("traces json");
    let traces = doc.get("traces").and_then(Value::as_arr).expect("traces array");
    assert!(!traces.is_empty(), "timelines were retained");
    let totals: Vec<f64> =
        traces.iter().map(|t| t.get("total_ns").and_then(Value::as_f64).expect("total")).collect();
    assert!(totals.windows(2).all(|w| w[0] >= w[1]), "slowest first: {totals:?}");
    let classify = traces
        .iter()
        .find(|t| t.get("path").and_then(Value::as_str) == Some("/v1/classify"))
        .expect("a classify timeline");
    for field in
        ["trace_id", "t0_ns", "parse_ns", "queue_ns", "batch_wait_ns", "compute_ns", "write_ns"]
    {
        assert!(classify.get(field).is_some(), "timeline misses {field}");
    }
    assert!(
        classify.get("compute_ns").and_then(Value::as_f64).expect("compute") > 0.0,
        "classify passed through the model thread"
    );
    let listed: Vec<&str> =
        traces.iter().filter_map(|t| t.get("trace_id").and_then(Value::as_str)).collect();
    for id in &echoed {
        let hex = format!("{id:016x}");
        assert!(listed.contains(&hex.as_str()), "echoed id {hex} not in /debug/traces");
    }

    // /slo: structured burn-rate status over both windows.
    let s = c.get("/slo").expect("slo");
    assert_eq!(s.status, 200);
    let doc = json::parse(&s.text()).expect("slo json");
    let fast = doc.get("fast").expect("fast window");
    assert!(fast.get("total").and_then(Value::as_f64).expect("total") >= 10.0);
    assert!(fast.get("burn_rate").and_then(Value::as_f64).is_some());
    assert_eq!(doc.get("firing").map(|v| matches!(v, Value::Bool(_))), Some(true));

    // /metrics: SLO gauges and an exemplar-annotated exposition that
    // still parses line-by-line.
    let m = c.get("/metrics").expect("metrics");
    let text = m.text();
    assert!(text.contains("# TYPE autoac_slo_burn_rate_fast gauge"), "{text}");
    assert!(text.contains("autoac_slo_alert_firing"), "{text}");
    assert!(text.contains("trace_id=\""), "tail buckets carry exemplars: {text}");

    // /admin/flight: dump lands where configured and is strict JSONL.
    let f = c.post("/admin/flight", "").expect("flight");
    assert_eq!(f.status, 200, "{}", f.text());
    let doc = json::parse(&f.text()).expect("flight ack json");
    let path = doc.get("path").and_then(Value::as_str).expect("path");
    assert!(doc.get("records").and_then(Value::as_f64).expect("records") > 0.0);
    let dump = std::fs::read_to_string(path).expect("dump file readable");
    let mut kinds = Vec::new();
    for (i, line) in dump.lines().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}: {line}"));
        if i == 0 {
            assert_eq!(v.get("kind").and_then(Value::as_str), Some("flight"));
        } else {
            kinds.extend(v.get("kind").and_then(Value::as_str).map(str::to_string));
        }
    }
    assert!(kinds.iter().any(|k| k == "request"), "request summaries recorded: {kinds:?}");
    assert!(kinds.iter().any(|k| k == "flush"), "batch flush decisions recorded: {kinds:?}");

    srv.stop();
    set_trace_force(None);
    let _ = std::fs::remove_dir_all(&dir);
}
