//! Seeded unsafe-audit violation: an unsafe block with no adjacent
//! comment stating the invariant that makes it sound.

/// Writes through a raw pointer without justifying why that is fine.
pub fn set_first(v: &mut [f32]) {
    let p = v.as_mut_ptr();
    unsafe {
        *p = 1.0;
    }
}
