//! Seeded rng-discipline violation: OS entropy in library code.

/// Draws from the thread-local OS-entropy generator — not replayable.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
