//! Seeded analyze fixture: the serving entry points, with exactly one
//! panic-reachability violation in a helper both of them reach.

/// Fixture twin of the real connection handler.
pub fn handle_connection(reqs: &[u32]) -> u32 {
    decode_request(reqs)
}

/// Fixture twin of the real model thread.
pub fn run_model_thread(reqs: &[u32]) -> u32 {
    decode_request(reqs)
}

/// The seeded violation: this unwrap is reachable from both entry points.
fn decode_request(reqs: &[u32]) -> u32 {
    *reqs.first().unwrap()
}
