//! Seeded env-contract violation: a registered variable read without its
//! strict parser in the same fn.

/// Loose read — the registry demands `parse_bool_env` next to the read.
pub fn checks_armed() -> bool {
    std::env::var("AUTOAC_CHECK").is_ok()
}
