//! Seeded lint fixture — NOT compiled into any crate. An obs-crate file
//! that is *not* `span.rs` self-timing inside a loop: the instant rule's
//! span-internals exemption must not leak to the rest of the crate.

use std::time::Instant;

pub fn seeded_timer_misuse(n: usize) -> u128 {
    let mut total = 0;
    for _ in 0..n {
        // Violation (instant-in-kernel-loop): timing outside span.rs.
        let t = Instant::now();
        total += t.elapsed().as_nanos();
    }
    total
}
