//! Seeded lint fixture — NOT compiled into any crate. Mirrors the obs span
//! internals (`crates/obs/src/span.rs`), the one file where raw timing
//! inside a loop is sanctioned, and the obs crate's `eprintln!` router.
//! Nothing in this file may be flagged.

use std::time::Instant;

pub fn sanctioned_span_timing(names: &[&str]) -> u128 {
    let mut total = 0;
    for _ in names {
        // Exempt: the span machinery is where timing lives by design.
        let t = Instant::now();
        total += t.elapsed().as_nanos();
    }
    // Exempt: the obs crate is the stderr router itself.
    eprintln!("autoac-obs: fixture warn");
    total
}
