//! Fixture parity harness: exercises fused_relu_scalar (word-delimited)
//! but deliberately not the blocked variant, so the fixture tree trips
//! dispatch-parity-coverage exactly once.

#[test]
fn scalar_variant_is_covered() {
    let _ = "fused_relu_scalar";
}
