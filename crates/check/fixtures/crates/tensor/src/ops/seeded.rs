//! Seeded lint fixture — NOT compiled into any crate. This file mirrors the
//! real repo layout (`crates/tensor/src/ops/`) so `lint_root` can be pointed
//! at the `fixtures/` directory and must report exactly one violation per
//! rule. The fixture tree has no `crates/tensor/tests/gradcheck.rs`, so the
//! op below also trips coverage.

use std::time::Instant;

pub fn seeded_uncovered_op(rows: usize, cols: usize) -> Matrix {
    // Violation 1 (raw-alloc-in-hotpath): pool-escaping constructor in ops/.
    let m = Matrix::from_vec(rows, cols, vec![0.0; rows * cols]);
    // Violation 2 (unwrap-in-lib): bare unwrap in library code.
    let first = m.data().first().unwrap();
    let mut acc = *first;
    for _ in 0..rows {
        // Violation 3 (instant-in-kernel-loop): timing inside the loop body.
        let t = Instant::now();
        acc += t.elapsed().as_secs_f32();
    }
    // Violation 4 (eprintln-in-lib): bare stderr diagnostic in library code.
    eprintln!("seeded warning that should route through autoac_obs::warn");
    let _ = acc;
    m
}

#[cfg(test)]
mod tests {
    // Inside a test module nothing is flagged, even patterns that would
    // otherwise trip every rule.
    fn unflagged() {
        let m = Matrix::from_vec(1, 1, vec![0.0]);
        let _ = m.data().first().unwrap();
    }
}
