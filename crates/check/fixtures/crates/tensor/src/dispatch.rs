//! Fixture dispatch registry for the dispatch-parity-coverage rule:
//! `fused_relu_blocked` is registered below but the fixture parity harness
//! (`../tests/kernel_parity.rs`) never mentions it — the seeded violation.
pub const VARIANTS: &[&str] = &[
    "fused_relu_scalar",
    "fused_relu_blocked",
];
