//! Seeded lint fixture — NOT compiled into any crate. Mirrors the
//! partitioner's layout (`crates/graph/src/shard.rs`) so the fixture tree
//! proves the lint rules cover the sharding subsystem: library code in the
//! partitioner must not bare-unwrap (a panic mid-partition poisons every
//! downstream shard schedule).

pub fn seeded_shard_of(spec: &str, num_shards: usize) -> usize {
    // Violation (unwrap-in-lib): a malformed shard spec would panic the
    // partitioner instead of surfacing a configuration error.
    let shard: usize = spec.trim().parse().unwrap();
    shard % num_shards.max(1)
}

#[cfg(test)]
mod tests {
    // Test modules stay exempt even inside the partitioner fixture.
    fn unflagged() {
        let _ = "3".trim().parse::<usize>().unwrap();
    }
}
