//! Seeded lint fixture — NOT compiled into any crate. Mirrors the serving
//! crate's layout (`crates/serve/src/`) so the fixture tree proves the lint
//! rules cover the new subsystem: library code in the server must not bare-
//! unwrap (a panicking worker drops its connection queue slot) and must not
//! write straight to stderr (warnings route through the counted
//! `autoac_obs::warn` so `/metrics` sees them).

pub fn seeded_route(body: &str) -> usize {
    // Violation 1 (unwrap-in-lib): a malformed request would panic the
    // worker instead of returning HTTP 400.
    let parsed: usize = body.trim().parse().unwrap();
    // Violation 2 (eprintln-in-lib): invisible to the metrics endpoint;
    // should be `autoac_obs::warn("serve", ...)`.
    eprintln!("served node {parsed}");
    parsed
}

#[cfg(test)]
mod tests {
    // Test modules stay exempt even inside the serving fixture.
    fn unflagged() {
        let _ = "7".trim().parse::<usize>().unwrap();
        eprintln!("tests may print");
    }
}
