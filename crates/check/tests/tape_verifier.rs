//! Property-based tests for the tape verifier: every well-formed graph the
//! op layer can build must verify clean, and a shape corruption injected
//! anywhere in the graph must be rejected with a diagnostic naming the
//! offending op.

use autoac_check::tape;
use autoac_tensor::{chk, Matrix, Tensor};
use proptest::prelude::*;

/// Unary, shape-aware ops the random chains draw from. Each is a *known*
/// op to the verifier's shape table, so corruptions are always detectable.
#[derive(Debug, Clone, Copy)]
enum OpChoice {
    Relu,
    Tanh,
    Sigmoid,
    Square,
    Scale,
    AddScalar,
    Transpose,
}

fn op_choice() -> impl Strategy<Value = OpChoice> {
    (0usize..7).prop_map(|i| match i {
        0 => OpChoice::Relu,
        1 => OpChoice::Tanh,
        2 => OpChoice::Sigmoid,
        3 => OpChoice::Square,
        4 => OpChoice::Scale,
        5 => OpChoice::AddScalar,
        _ => OpChoice::Transpose,
    })
}

/// Applies one op, returning the new tensor and its (rows, cols).
fn apply(t: &Tensor, c: OpChoice, rows: usize, cols: usize) -> (Tensor, usize, usize) {
    match c {
        OpChoice::Relu => (t.relu(), rows, cols),
        OpChoice::Tanh => (t.tanh(), rows, cols),
        OpChoice::Sigmoid => (t.sigmoid(), rows, cols),
        OpChoice::Square => (t.square(), rows, cols),
        OpChoice::Scale => (t.scale(0.5), rows, cols),
        OpChoice::AddScalar => (t.add_scalar(0.25), rows, cols),
        OpChoice::Transpose => (t.transpose(), cols, rows),
    }
}

/// Builds a random chain `param -> unary ops -> matmul(const) -> sum` and
/// returns (loss, every intermediate op tensor in order).
fn build_chain(rows: usize, cols: usize, chain: &[OpChoice]) -> (Tensor, Vec<Tensor>) {
    let p = Tensor::new(Matrix::ones(rows, cols), true);
    let (mut t, mut r, mut c) = (p, rows, cols);
    let mut nodes = Vec::new();
    for &choice in chain {
        let (nt, nr, nc) = apply(&t, choice, r, c);
        t = nt;
        r = nr;
        c = nc;
        nodes.push(t.clone());
    }
    let k = Tensor::new(Matrix::ones(c, 2), false);
    let h = t.matmul(&k);
    nodes.push(h.clone());
    let loss = h.sum();
    nodes.push(loss.clone());
    (loss, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_valid_graphs_verify_clean(
        rows in 2usize..6,
        cols in 2usize..6,
        chain in proptest::collection::vec(op_choice(), 0..6),
    ) {
        let (loss, nodes) = build_chain(rows, cols, &chain);
        let report = tape::verify_loss(&loss);
        prop_assert!(report.is_clean(), "clean graph rejected:\n{}", report.render());
        // Every node we built (plus param + constant) was inspected.
        prop_assert!(report.inspected >= nodes.len() + 2);
    }

    #[test]
    fn corrupted_node_is_rejected_naming_the_op(
        rows in 2usize..6,
        cols in 2usize..6,
        chain in proptest::collection::vec(op_choice(), 1..6),
        pick in 0usize..32,
    ) {
        let (loss, nodes) = build_chain(rows, cols, &chain);
        let victim = &nodes[pick % nodes.len()];
        let op = victim.op_name();
        // Shape corruption behind the tape's back: no op ever produces a
        // 13x17 from these chains.
        victim.update_value(|m| *m = Matrix::ones(13, 17));
        let report = tape::verify_loss(&loss);
        prop_assert!(!report.is_clean(), "corruption of `{op}` not detected");
        let named = report
            .diagnostics
            .iter()
            .any(|d| d.message.contains(&format!("`{op}`")));
        prop_assert!(named, "no diagnostic names `{op}`:\n{}", report.render());
    }
}

#[test]
fn backward_hook_panics_on_corruption_only_when_enabled() {
    let build = || {
        let x = Tensor::new(Matrix::ones(3, 4), true);
        let w = Tensor::new(Matrix::ones(4, 2), true);
        let h = x.matmul(&w);
        let loss = h.relu().sum();
        h.update_value(|m| *m = Matrix::ones(9, 9));
        loss
    };
    // Disabled: the hook is a no-op even on a corrupted graph.
    chk::with_check(false, || {
        tape::verify_backward_if_enabled(&build());
    });
    // Enabled: the hook panics with the rendered report.
    let err = std::panic::catch_unwind(|| {
        chk::with_check(true, || {
            tape::verify_backward_if_enabled(&build());
        });
    })
    .expect_err("corrupted graph must panic under AUTOAC_CHECK");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("matmul"), "panic should name the op: {msg}");
}
