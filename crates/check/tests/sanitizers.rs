//! Integration tests for the runtime sanitizers re-exported by
//! `autoac-check`: the pool provenance sanitizer and the parallel-region
//! race checker. Each seeded bug must be caught deterministically, and a
//! clean workload must produce zero findings.

use autoac_check::{capture_pool_violations, capture_race_violations, PoolViolationKind};
use autoac_tensor::parallel::{self, race};
use autoac_tensor::{chk, pool, Matrix, Tensor};

#[test]
fn seeded_use_after_release_is_reported_with_op_names() {
    pool::with_pool(true, || {
        chk::with_check(true, || {
            pool::trim();
            let (_, violations) = capture_pool_violations(|| {
                pool::seed_use_after_release_for_tests();
            });
            pool::trim();
            assert_eq!(violations.len(), 1, "{violations:?}");
            let v = &violations[0];
            assert_eq!(v.kind, PoolViolationKind::UseAfterRelease);
            assert_eq!(v.alloc_op, "uar_fixture");
            assert_eq!(v.release_op, "uar_fixture");
            let text = v.to_string();
            assert!(text.contains("use-after-release"), "{text}");
        })
    });
}

#[test]
fn seeded_double_release_is_reported_and_quarantined() {
    pool::with_pool(true, || {
        chk::with_check(true, || {
            pool::trim();
            let (_, violations) = capture_pool_violations(|| {
                pool::seed_double_release_for_tests();
            });
            pool::trim();
            assert_eq!(violations.len(), 1, "{violations:?}");
            assert_eq!(violations[0].kind, PoolViolationKind::DoubleRelease);
            assert_eq!(violations[0].release_op, "dr_fixture");
        })
    });
}

#[test]
fn clean_training_step_produces_zero_sanitizer_findings() {
    pool::with_pool(true, || {
        chk::with_check(true, || {
            pool::trim();
            let ((), pool_violations) = capture_pool_violations(|| {
                let ((), race_violations) = capture_race_violations(|| {
                    // A realistic mini training step: forward, backward,
                    // parallel kernel work — all recycling through the pool.
                    for step in 0..5 {
                        let x = Tensor::new(Matrix::ones(16, 8), true);
                        let w = Tensor::new(Matrix::ones(8, 4), true);
                        let loss = x.matmul(&w).relu().sum();
                        loss.backward();
                        let mut buf = vec![0.0f32; 64 * 4];
                        parallel::for_each_row_chunk(&mut buf, 4, 64, |start, rows| {
                            for (i, row) in rows.chunks_mut(4).enumerate() {
                                row[0] = (start + i + step) as f32;
                            }
                        });
                    }
                });
                assert!(race_violations.is_empty(), "{race_violations:?}");
            });
            pool::trim();
            assert!(pool_violations.is_empty(), "{pool_violations:?}");
        })
    });
}

#[test]
fn seeded_racy_kernel_is_flagged_with_kernel_op_name() {
    chk::with_check(true, || {
        let _op = chk::op_scope("seeded_racy_kernel");
        let (_, violations) = capture_race_violations(|| {
            // A kernel that *plans* overlapping row ranges across workers.
            // The region records the declared partition; execution stays
            // serial so the test itself is safe.
            let region = race::Region::new("seeded_region").expect("checks enabled");
            let buf = 0xBEEF_usize;
            region.record(0, buf, 0..8, race::AccessKind::Write);
            region.record(1, buf, 6..12, race::AccessKind::Write);
            region.record(2, buf, 20..30, race::AccessKind::Read); // disjoint: fine
            region.finish();
        });
        assert_eq!(violations.len(), 1, "{violations:?}");
        let v = &violations[0];
        assert_eq!(v.region, "seeded_region");
        assert_eq!(v.op, "seeded_racy_kernel");
        assert!(v.to_string().contains("overlap"), "{v}");
    });
}

#[test]
fn race_checker_costs_nothing_when_disabled() {
    chk::with_check(false, || {
        assert!(race::Region::new("off").is_none());
    });
}
