//! The lint engine must trip on every seeded violation in the fixture tree
//! and stay silent on the real repository.

use std::path::PathBuf;

use autoac_check::lint;
use autoac_check::Analysis;

fn fixtures_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn fixture_tree_trips_every_rule_exactly_once() {
    let report = lint::lint_root(&fixtures_root());
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in [
        "unwrap-in-lib",
        "raw-alloc-in-hotpath",
        "instant-in-kernel-loop",
        "op-gradcheck-coverage",
    ] {
        assert_eq!(
            rules.iter().filter(|r| **r == rule).count(),
            1,
            "expected exactly one `{rule}` finding in fixtures:\n{}",
            report.render()
        );
    }
    assert_eq!(report.diagnostics.len(), 4, "{}", report.render());
    // Every finding is anchored to the seeded file with a line number.
    for d in &report.diagnostics {
        assert!(d.analysis == Analysis::Lint);
        assert!(
            d.location.starts_with("crates/tensor/src/ops/seeded.rs:"),
            "bad location {}",
            d.location
        );
    }
}

#[test]
fn real_repository_is_lint_clean() {
    let report = lint::lint_root(&repo_root());
    assert!(
        report.is_clean(),
        "the repo must stay lint-clean; fix or `lint:allow(...)` with a reason:\n{}",
        report.render()
    );
    // Sanity: the walk actually visited the workspace (≳70 source files).
    assert!(report.inspected >= 50, "only {} files inspected", report.inspected);
}
