//! The lint engine must trip on every seeded violation in the fixture tree
//! and stay silent on the real repository.

use std::path::PathBuf;

use autoac_check::lint;
use autoac_check::Analysis;

fn fixtures_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn fixture_tree_trips_every_rule_and_honors_obs_exemptions() {
    let report = lint::lint_root(&fixtures_root());
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in ["raw-alloc-in-hotpath", "op-gradcheck-coverage", "dispatch-parity-coverage"] {
        assert_eq!(
            rules.iter().filter(|r| **r == rule).count(),
            1,
            "expected exactly one `{rule}` finding in fixtures:\n{}",
            report.render()
        );
    }
    // The unwrap rule fires three times: tensor ops, the serving fixture,
    // and the partitioner fixture (the lint walk must cover
    // crates/graph/src like any other library tree).
    assert_eq!(
        rules.iter().filter(|r| **r == "unwrap-in-lib").count(),
        3,
        "expected exactly three `unwrap-in-lib` findings in fixtures:\n{}",
        report.render()
    );
    // eprintln fires twice: once in the tensor ops fixture and once in the
    // serving fixture.
    assert_eq!(
        rules.iter().filter(|r| **r == "eprintln-in-lib").count(),
        2,
        "expected exactly two `eprintln-in-lib` findings in fixtures:\n{}",
        report.render()
    );
    // The instant rule fires twice: once in the tensor ops fixture, once in
    // the obs crate *outside* span.rs (the span-internals exemption must not
    // cover the rest of the crate).
    assert_eq!(
        rules.iter().filter(|r| **r == "instant-in-kernel-loop").count(),
        2,
        "{}",
        report.render()
    );
    assert_eq!(report.diagnostics.len(), 10, "{}", report.render());
    // Every finding is anchored to a seeded file with a line number; the
    // sanctioned fixtures/crates/obs/src/span.rs stays silent despite
    // containing both an in-loop Instant::now and an eprintln!.
    for d in &report.diagnostics {
        assert!(d.analysis == Analysis::Lint);
        assert!(
            d.location.starts_with("crates/tensor/src/ops/seeded.rs:")
                || d.location.starts_with("crates/obs/src/seeded_timer.rs:")
                || d.location.starts_with("crates/tensor/src/dispatch.rs:")
                || d.location.starts_with("crates/serve/src/seeded_routes.rs:")
                || d.location.starts_with("crates/graph/src/shard.rs:"),
            "bad location {}",
            d.location
        );
    }
}

#[test]
fn real_repository_is_lint_clean() {
    let report = lint::lint_root(&repo_root());
    assert!(
        report.is_clean(),
        "the repo must stay lint-clean; fix or `lint:allow(...)` with a reason:\n{}",
        report.render()
    );
    // Sanity: the walk actually visited the workspace (≳70 source files).
    assert!(report.inspected >= 50, "only {} files inspected", report.inspected);
}
