//! The whole-workspace analyses must trip on every seeded violation in the
//! analyze fixture tree — exactly once per rule — and stay silent on the
//! real repository.

use std::path::PathBuf;

use autoac_check::analyze::rules::{
    self, RULE_ENV, RULE_PANIC, RULE_RNG, RULE_UNSAFE, SERVE_ENTRY_POINTS,
};
use autoac_check::analyze::workspace::Workspace;

fn fixture_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/analyze"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn fixture_tree_trips_each_analysis_exactly_once() {
    let ws = Workspace::load(&fixture_root()).expect("fixture tree loads");
    let out = rules::analyze(&ws);
    let rules_hit: Vec<&str> = out.report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in [RULE_PANIC, RULE_ENV, RULE_RNG, RULE_UNSAFE] {
        assert_eq!(
            rules_hit.iter().filter(|r| **r == rule).count(),
            1,
            "expected exactly one `{rule}` finding in the analyze fixtures:\n{}",
            out.report.render()
        );
    }
    assert_eq!(out.report.diagnostics.len(), 4, "{}", out.report.render());
    for d in &out.report.diagnostics {
        let loc = &d.location;
        assert!(
            loc.starts_with("crates/serve/src/server.rs:")
                || loc.starts_with("crates/serve/src/env_knob.rs:")
                || loc.starts_with("crates/nn/src/sample.rs:")
                || loc.starts_with("crates/tensor/src/raw.rs:"),
            "finding outside the seeded files: {loc}"
        );
    }
    // Both entry points exist in the fixture serve crate and were found.
    assert_eq!(out.entry_points.len(), SERVE_ENTRY_POINTS.len());
}

#[test]
fn real_repository_is_analysis_clean() {
    // The acceptance bar for the analysis layer: zero non-allowlisted
    // findings over the real workspace, and every allowlisted one carries
    // a reason.
    let out = rules::analyze_root(&repo_root()).expect("repo loads");
    assert!(
        out.report.is_clean(),
        "the repo must stay analysis-clean; fix or `analyze:allow(rule, reason)`:\n{}",
        out.report.render()
    );
    for a in &out.allowed {
        assert!(
            !a.reason.trim().is_empty(),
            "allowlist entry without a reason at {}",
            a.location
        );
    }
    assert!(out.stats.files >= 120, "only {} files loaded", out.stats.files);
}

#[test]
fn panic_reachability_covers_every_serving_entry_point() {
    // The entry-point list is part of the analysis contract: if a serving
    // entry point is renamed or removed, this test (and the analysis, which
    // reports a finding for missing entries) must be updated together.
    let ws = Workspace::load(&repo_root()).expect("repo loads");
    let out = rules::analyze(&ws);
    assert_eq!(
        SERVE_ENTRY_POINTS,
        &["handle_connection", "run_model_thread"],
        "update this test together with the entry-point registry"
    );
    for name in SERVE_ENTRY_POINTS {
        assert!(
            out.entry_points.iter().any(|e| e.contains(name)),
            "entry point `{name}` was not located in crates/serve: {:?}",
            out.entry_points
        );
    }
    // Every located entry point resolves to a real fn in the serve crate.
    for e in &out.entry_points {
        assert!(e.contains("crates/serve/src/"), "entry outside serve: {e}");
    }
}
