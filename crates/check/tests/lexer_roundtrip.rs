//! Property tests for the analyzer's token-level lexer: it must be *total*
//! (never panic, any input) and *lossless* (token texts concatenate back to
//! the input byte-for-byte), because every downstream analysis trusts the
//! token spans to tile the file exactly.
//!
//! The vendored proptest has no regex-string strategies, so the generators
//! are hand-rolled: a char soup biased toward lexer-tricky bytes, and a
//! fragment soup that splices whole raw strings, nested comments, char
//! literals, and lifetimes next to each other.

use autoac_check::analyze::lexer::{lex, TokKind};
use proptest::prelude::*;
use rand::Rng;

/// Lossless + total: lexing never panics and the token texts tile the input.
fn assert_roundtrip(input: &str) {
    let toks = lex(input);
    let rebuilt: String = toks.iter().map(|t| t.text).collect();
    assert_eq!(rebuilt, input, "token texts must concatenate to the input");
    // Line numbers never decrease and start at 1.
    let mut last = 1;
    for t in &toks {
        assert!(t.line >= last, "line numbers must be monotonic");
        last = t.line;
    }
}

/// Strategy: strings of up to `max_len` chars drawn from `charset`.
struct Soup {
    charset: &'static [char],
    max_len: usize,
}

impl Strategy for Soup {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(0..self.max_len + 1);
        (0..len).map(|_| self.charset[rng.gen_range(0..self.charset.len())]).collect()
    }
}

/// Strategy: concatenations of whole Rust-ish fragments, so multi-byte
/// constructs (raw strings, nested comments) actually appear intact.
struct Fragments {
    max_frags: usize,
}

const FRAGS: &[&str] = &[
    "fn f() { 1 }",
    "r\"raw\"",
    "r#\"ra\"w\"#",
    "r##\"x\"# still\"##",
    "b\"bytes\\\"esc\"",
    "\"str with \\\\ and \\\" quotes\"",
    "\"unterminated",
    "/* block /* nested */ still */",
    "/* unterminated",
    "// line comment",
    "/// doc comment\n",
    "'c'",
    "'\\n'",
    "'\\''",
    "'static",
    "'a",
    "b'x'",
    "0x1f_u32",
    "1.5e-3",
    "ident_0",
    "x[i]",
    ".unwrap()",
    "::<>",
    "\n",
    " ",
    "\t",
    "}",
    "{",
];

impl Strategy for Fragments {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let n = rng.gen_range(0..self.max_frags + 1);
        (0..n).map(|_| FRAGS[rng.gen_range(0..FRAGS.len())]).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Bytes that drive every branch of the lexer: quote/hash/slash soup.
    #[test]
    fn lexer_soup_roundtrips(input in Soup {
        charset: &['r', 'b', '#', '"', '\'', '\\', '/', '*', 'a', '_', '0',
                   '9', '.', 'e', '{', '}', '[', ']', ' ', '\n', 'é'],
        max_len: 64,
    }) {
        assert_roundtrip(&input);
    }

    // Whole fragments keep raw strings and nested comments intact so the
    // happy paths are exercised, not just the error-recovery ones.
    #[test]
    fn lexer_fragments_roundtrip(input in Fragments { max_frags: 12 }) {
        assert_roundtrip(&input);
    }
}

/// Pinned counterexamples for the constructs the fixture soup found or
/// nearly found: these must keep lexing exactly, not just by luck of seed.
#[test]
fn pinned_tricky_inputs_roundtrip() {
    for s in [
        "r#\"has \"quote\" inside\"#",
        "r###\"##\"## not the end\"###",
        "/* a /* b /* c */ */ */ after",
        "'a: loop { break 'a; }",
        "let c = '\\u{1F600}';",
        "b\"\\x00\\xff\"",
        "\"\\\\\"",   // escaped backslash then close
        "r\"",         // unterminated raw string opener
        "r#",          // raw-string prefix that never opens
        "//",          // bare line comment at EOF
        "'",           // lone quote at EOF
    ] {
        assert_roundtrip(s);
        assert!(!lex(s).is_empty() || s.is_empty());
    }
}

/// Classification smoke: the kinds the analyses rely on are stable.
#[test]
fn classification_of_core_constructs() {
    let toks = lex("r#\"x\"# \"s\" 'c' 'a ident 7 // c\n/* b */");
    let kinds: Vec<TokKind> = toks.iter().filter(|t| t.kind != TokKind::Whitespace).map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![
            TokKind::RawStr,
            TokKind::Str,
            TokKind::CharLit,
            TokKind::Lifetime,
            TokKind::Ident,
            TokKind::Number,
            TokKind::LineComment,
            TokKind::BlockComment,
        ]
    );
}
