//! Autograd tape verifier.
//!
//! Walks the recorded graph **before** `backward()` runs and statically
//! re-derives what every op's output shape must be from its parents' shapes
//! (the same shape algebra the kernels implement), flags:
//!
//! - **shape-mismatch** — a node whose stored value no longer satisfies its
//!   op's shape rule (e.g. a fused backward closure or an in-place
//!   `update_value` corrupted an intermediate). Gradient accumulation shapes
//!   follow from these rules (every op's parent gradient has the parent's
//!   shape), so checking the forward rules checks the accumulation too; the
//!   runtime assert in `accum_grad` is the belt-and-braces second line.
//! - **arity-mismatch** — an op recorded with the wrong number of parents.
//! - **topo-violation** — a parent created *after* its child. Node ids are
//!   allocated monotonically, so `parent.id() < child.id()` must hold for
//!   every edge; a violation means the tape was stitched together out of
//!   order and reverse-id iteration would fire closures early.
//! - **dead-param** — a parameter unreachable from the loss: it silently
//!   never trains. [`verify_with_params`] takes named parameters and an
//!   allowlist for parameters that are legitimately unused in a given mode.
//! - **frozen-param** — a parameter with `requires_grad == false`: reachable
//!   or not, gradients will never flow into it.
//!
//! Ops the verifier does not know are skipped (never a false positive);
//! every op in `crates/tensor/src/ops/` plus `spmm` has a rule below.

use std::collections::{HashMap, HashSet};

use autoac_tensor::Tensor;

use crate::diag::{Analysis, Diagnostic, Report};

type Shape = (usize, usize);

/// Re-derives the output shape constraint for `op` from parent shapes.
/// `Ok(())` means consistent; `Err` carries the human-readable reason.
/// Unknown ops are accepted (zero false positives by construction).
fn shape_rule(op: &str, out: Shape, ps: &[Shape]) -> Result<(), String> {
    let arity = |want: usize| -> Result<(), String> {
        if ps.len() == want {
            Ok(())
        } else {
            Err(format!("expected {want} parent(s), recorded {}", ps.len()))
        }
    };
    let same_as_first = |out: Shape, ps: &[Shape]| -> Result<(), String> {
        if out == ps[0] {
            Ok(())
        } else {
            Err(format!(
                "output {}x{} must match input {}x{}",
                out.0, out.1, ps[0].0, ps[0].1
            ))
        }
    };
    match op {
        // Elementwise binary: both parents and the output share one shape.
        "add" | "sub" | "mul" => {
            arity(2)?;
            if ps[0] != ps[1] {
                return Err(format!(
                    "operand shapes differ: {}x{} vs {}x{}",
                    ps[0].0, ps[0].1, ps[1].0, ps[1].1
                ));
            }
            same_as_first(out, ps)
        }
        // Elementwise unary: output preserves the input shape.
        "scale" | "add_scalar" | "relu" | "leaky_relu" | "elu" | "sigmoid" | "tanh" | "exp"
        | "ln" | "sqrt" | "square" | "dropout" | "softmax_rows" | "log_softmax_rows"
        | "group_softmax" => {
            arity(1)?;
            same_as_first(out, ps)
        }
        "mul_scalar_tensor" => {
            arity(2)?;
            if ps[1] != (1, 1) {
                return Err(format!("scalar operand must be 1x1, got {}x{}", ps[1].0, ps[1].1));
            }
            same_as_first(out, ps)
        }
        "matmul" => {
            arity(2)?;
            if ps[0].1 != ps[1].0 {
                return Err(format!(
                    "inner dimensions differ: {}x{} · {}x{}",
                    ps[0].0, ps[0].1, ps[1].0, ps[1].1
                ));
            }
            if out != (ps[0].0, ps[1].1) {
                return Err(format!(
                    "product of {}x{} · {}x{} must be {}x{}, recorded {}x{}",
                    ps[0].0, ps[0].1, ps[1].0, ps[1].1, ps[0].0, ps[1].1, out.0, out.1
                ));
            }
            Ok(())
        }
        "transpose" => {
            arity(1)?;
            if out != (ps[0].1, ps[0].0) {
                return Err(format!(
                    "transpose of {}x{} must be {}x{}, recorded {}x{}",
                    ps[0].0, ps[0].1, ps[0].1, ps[0].0, out.0, out.1
                ));
            }
            Ok(())
        }
        "add_row_vec" => {
            arity(2)?;
            if ps[1] != (1, ps[0].1) {
                return Err(format!(
                    "bias must be 1x{}, got {}x{}",
                    ps[0].1, ps[1].0, ps[1].1
                ));
            }
            same_as_first(out, ps)
        }
        "mul_col_vec" => {
            arity(2)?;
            if ps[1] != (ps[0].0, 1) {
                return Err(format!(
                    "column vector must be {}x1, got {}x{}",
                    ps[0].0, ps[1].0, ps[1].1
                ));
            }
            same_as_first(out, ps)
        }
        "rowwise_dot" => {
            arity(2)?;
            if ps[0] != ps[1] {
                return Err(format!(
                    "operand shapes differ: {}x{} vs {}x{}",
                    ps[0].0, ps[0].1, ps[1].0, ps[1].1
                ));
            }
            if out != (ps[0].0, 1) {
                return Err(format!("output must be {}x1, recorded {}x{}", ps[0].0, out.0, out.1));
            }
            Ok(())
        }
        "concat_cols" => {
            if ps.is_empty() {
                return Err("no parents recorded".into());
            }
            let rows = ps[0].0;
            if ps.iter().any(|p| p.0 != rows) {
                return Err("parts disagree on row count".into());
            }
            let cols: usize = ps.iter().map(|p| p.1).sum();
            if out != (rows, cols) {
                return Err(format!(
                    "concat of {} parts must be {}x{}, recorded {}x{}",
                    ps.len(),
                    rows,
                    cols,
                    out.0,
                    out.1
                ));
            }
            Ok(())
        }
        "concat_rows" => {
            if ps.is_empty() {
                return Err("no parents recorded".into());
            }
            let cols = ps[0].1;
            if ps.iter().any(|p| p.1 != cols) {
                return Err("parts disagree on column count".into());
            }
            let rows: usize = ps.iter().map(|p| p.0).sum();
            if out != (rows, cols) {
                return Err(format!(
                    "concat of {} parts must be {}x{}, recorded {}x{}",
                    ps.len(),
                    rows,
                    cols,
                    out.0,
                    out.1
                ));
            }
            Ok(())
        }
        "slice_cols" => {
            arity(1)?;
            if out.0 != ps[0].0 || out.1 > ps[0].1 {
                return Err(format!(
                    "slice of {}x{} cannot be {}x{}",
                    ps[0].0, ps[0].1, out.0, out.1
                ));
            }
            Ok(())
        }
        "linear" => {
            if ps.len() != 2 && ps.len() != 3 {
                return Err(format!("expected 2 or 3 parents, recorded {}", ps.len()));
            }
            if ps[0].1 != ps[1].0 {
                return Err(format!(
                    "inner dimensions differ: {}x{} · {}x{}",
                    ps[0].0, ps[0].1, ps[1].0, ps[1].1
                ));
            }
            if let Some(b) = ps.get(2) {
                if *b != (1, ps[1].1) {
                    return Err(format!("bias must be 1x{}, got {}x{}", ps[1].1, b.0, b.1));
                }
            }
            if out != (ps[0].0, ps[1].1) {
                return Err(format!(
                    "affine output must be {}x{}, recorded {}x{}",
                    ps[0].0, ps[1].1, out.0, out.1
                ));
            }
            Ok(())
        }
        // Row-indexing ops change the row count data-dependently; the
        // column count must survive.
        "gather_rows" | "scatter_add_rows" | "spmm" => {
            arity(1)?;
            if out.1 != ps[0].1 {
                return Err(format!(
                    "column count must survive: input {}x{}, output {}x{}",
                    ps[0].0, ps[0].1, out.0, out.1
                ));
            }
            Ok(())
        }
        // Scalar-valued reductions and losses.
        "sum" | "nll_loss_rows" | "multilabel_bce_rows" => {
            arity(1)?;
            if out != (1, 1) {
                return Err(format!("scalar output must be 1x1, recorded {}x{}", out.0, out.1));
            }
            Ok(())
        }
        "bce_with_logits" => {
            arity(1)?;
            if ps[0].1 != 1 {
                return Err(format!("input must be an Ex1 column, got {}x{}", ps[0].0, ps[0].1));
            }
            if out != (1, 1) {
                return Err(format!("scalar output must be 1x1, recorded {}x{}", out.0, out.1));
            }
            Ok(())
        }
        "sum_rows" => {
            arity(1)?;
            if out != (ps[0].0, 1) {
                return Err(format!("output must be {}x1, recorded {}x{}", ps[0].0, out.0, out.1));
            }
            Ok(())
        }
        "sum_cols" => {
            arity(1)?;
            if out != (1, ps[0].1) {
                return Err(format!("output must be 1x{}, recorded {}x{}", ps[0].1, out.0, out.1));
            }
            Ok(())
        }
        // Leaves and ops this verifier does not model.
        _ => Ok(()),
    }
}

/// Walks every node reachable from `loss` (through all parents, including
/// non-differentiable constants — their shapes feed the rules) and checks
/// shape rules and topo-order integrity. `Report.inspected` counts visited
/// nodes.
pub fn verify_loss(loss: &Tensor) -> Report {
    let mut report = Report::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack = vec![loss.clone()];
    visited.insert(loss.id());
    while let Some(t) = stack.pop() {
        report.inspected += 1;
        if !t.is_leaf() {
            let ps: Vec<(usize, usize)> = t.parents().iter().map(Tensor::shape).collect();
            if let Err(why) = shape_rule(t.op_name(), t.shape(), &ps) {
                report.push(Diagnostic {
                    analysis: Analysis::Tape,
                    rule: "shape-mismatch",
                    message: format!("op `{}`: {}", t.op_name(), why),
                    location: format!("node #{}", t.id()),
                });
            }
            for p in t.parents() {
                if p.id() >= t.id() {
                    report.push(Diagnostic {
                        analysis: Analysis::Tape,
                        rule: "topo-violation",
                        message: format!(
                            "op `{}` (node #{}) has parent `{}` (node #{}) created after it",
                            t.op_name(),
                            t.id(),
                            p.op_name(),
                            p.id()
                        ),
                        location: format!("node #{}", t.id()),
                    });
                }
            }
        }
        for p in t.parents() {
            if visited.insert(p.id()) {
                stack.push(p.clone());
            }
        }
    }
    report
}

/// Ids of every node reachable from `loss`.
fn reachable_ids(loss: &Tensor) -> HashSet<u64> {
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack = vec![loss.clone()];
    visited.insert(loss.id());
    while let Some(t) = stack.pop() {
        for p in t.parents() {
            if visited.insert(p.id()) {
                stack.push(p.clone());
            }
        }
    }
    visited
}

/// [`verify_loss`] plus dead/frozen-parameter detection over named
/// parameters. `allow_dead` lists parameter names that are legitimately
/// unreachable in this configuration (each entry should carry a comment at
/// the call site explaining why).
pub fn verify_with_params(
    loss: &Tensor,
    params: &[(String, Tensor)],
    allow_dead: &[&str],
) -> Report {
    let mut report = verify_loss(loss);
    let reachable = reachable_ids(loss);
    let mut seen_names: HashMap<&str, usize> = HashMap::new();
    for (name, p) in params {
        *seen_names.entry(name.as_str()).or_insert(0) += 1;
        if !p.requires_grad() {
            report.push(Diagnostic {
                analysis: Analysis::Tape,
                rule: "frozen-param",
                message: format!(
                    "parameter `{name}` ({}x{}) has requires_grad == false and can never train",
                    p.shape().0,
                    p.shape().1
                ),
                location: format!("node #{}", p.id()),
            });
        }
        if !reachable.contains(&p.id()) && !allow_dead.contains(&name.as_str()) {
            report.push(Diagnostic {
                analysis: Analysis::Tape,
                rule: "dead-param",
                message: format!(
                    "parameter `{name}` ({}x{}) is unreachable from the loss and silently never trains",
                    p.shape().0,
                    p.shape().1
                ),
                location: format!("node #{}", p.id()),
            });
        }
    }
    report
}

/// Trainer hook: when `AUTOAC_CHECK` is armed, verifies the tape (shape and
/// topo rules — *not* dead-parameter detection, which is configuration
/// dependent and audited separately) and panics with the full report on any
/// finding. A no-op costing one thread-local read when checks are off.
pub fn verify_backward_if_enabled(loss: &Tensor) {
    if !autoac_tensor::chk::enabled() {
        return;
    }
    let report = verify_loss(loss);
    assert!(
        report.is_clean(),
        "autoac-check: tape verification failed before backward():\n{}",
        report.render()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::{Matrix, Tensor};

    #[test]
    fn clean_graph_is_accepted() {
        let x = Tensor::param(Matrix::ones(3, 4));
        let w = Tensor::param(Matrix::ones(4, 2));
        let b = Tensor::param(Matrix::ones(1, 2));
        let loss = x.matmul(&w).add_row_vec(&b).relu().sum();
        let report = verify_loss(&loss);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.inspected >= 7, "walk must cover the whole graph");
    }

    #[test]
    fn corrupted_intermediate_is_rejected_naming_the_op() {
        let x = Tensor::param(Matrix::ones(3, 4));
        let w = Tensor::param(Matrix::ones(4, 2));
        let h = x.matmul(&w);
        let loss = h.sum();
        // Simulate a corrupting in-place mutation of the recorded value.
        h.update_value(|m| *m = Matrix::ones(5, 5));
        let report = verify_loss(&loss);
        assert!(!report.is_clean());
        let msg = report.render();
        assert!(msg.contains("`matmul`"), "must name the offending op: {msg}");
    }

    #[test]
    fn dead_and_frozen_params_are_flagged_and_allowlisted() {
        let used = Tensor::param(Matrix::ones(2, 2));
        let dead = Tensor::param(Matrix::ones(3, 3));
        let frozen = Tensor::new(Matrix::ones(2, 2), false);
        let loss = used.sum();
        let params = vec![
            ("used".to_string(), used.clone()),
            ("dead".to_string(), dead.clone()),
            ("frozen".to_string(), frozen.clone()),
        ];
        let report = verify_with_params(&loss, &params, &[]);
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"dead-param"), "{rules:?}");
        assert!(rules.contains(&"frozen-param"), "{rules:?}");
        assert!(
            report.render().contains("`dead`"),
            "must name the dead parameter: {}",
            report.render()
        );
        // Allowlisting silences dead-param (frozen stays flagged: frozen is
        // a property of the tensor, not of reachability).
        let report = verify_with_params(&loss, &params, &["dead", "frozen"]);
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert!(!rules.contains(&"dead-param"), "{rules:?}");
        assert!(rules.contains(&"frozen-param"), "{rules:?}");
    }
}
