//! Workspace loading and the approximate call graph.
//!
//! The graph is *name-based*: fn definitions come from the item tree, and
//! call sites are classified by their token shape —
//!
//! - `.name(`            → method call, resolved among method defs;
//! - `Type::name(`       → qualified call, resolved against the impl
//!   self-type (with `Self` mapped to the caller's own impl type);
//! - `modname::name(`    → module-qualified free call, resolved by file
//!   stem or inline-module name;
//! - `name(`             → bare free call, same-crate defs preferred.
//!
//! When several defs share a name and the qualifier does not narrow them
//! to one, the call is recorded as *ambiguous* rather than guessed at.
//! Ambiguity acts as a natural truncation point (e.g. every model's
//! `forward`), and the analyzer reports ambiguous names it hit from
//! reachable code so the blind spots are explicit instead of silent.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fs;
use std::path::Path;

use super::source::{FileKind, SourceFile};

/// Stable id of a function definition: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// How a call site is qualified, with the final path segment as `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(` — a method call on some receiver.
    Method,
    /// `Qual::name(` — qualified; payload is the last qualifier segment.
    Qualified(String),
    /// `name(` — an unqualified call.
    Bare,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Final path segment being called.
    pub name: String,
    /// Qualification shape.
    pub kind: CallKind,
    /// Token index of the name ident in the containing file.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
}

/// Outcome of resolving one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Exactly one workspace def matches.
    Unique(FnId),
    /// No workspace def matches (std / vendored / trait object).
    External,
    /// More than one def matches and the qualifier can't pick one.
    Ambiguous(usize),
}

/// Method names that shadow std-prelude/primitive methods. A `.name(`
/// call with one of these names is never resolved by the unique-name
/// heuristic — the receiver is overwhelmingly likely to be a std type
/// (`str::parse`, `Option::take`, `Vec::push`, …), so a lone workspace
/// def with the same name would create a false edge into unrelated code.
const STD_SHADOWED_METHODS: &[&str] = &[
    "parse", "clone", "cloned", "collect", "insert", "remove", "get", "push", "pop", "len",
    "iter", "into_iter", "next", "map", "filter", "find", "write", "read", "flush", "join",
    "send", "recv", "lock", "take", "sort", "extend", "contains", "starts_with", "ends_with",
    "split", "trim", "to_string", "into", "from", "clear", "drain", "last", "first", "count",
    "min", "max", "sum", "abs", "floor", "ceil", "sqrt", "exp", "ln", "powi", "powf",
    "load", "store", "swap", "wait", "notify_one", "notify_all",
];

/// The loaded workspace: files, fn defs, and the resolved call graph.
pub struct Workspace {
    /// Every analyzed file.
    pub files: Vec<SourceFile>,
    /// Call sites per fn def, parallel to `files[f].fns`.
    pub calls: HashMap<FnId, Vec<(CallSite, Resolution)>>,
    /// Total call sites seen.
    pub call_sites: usize,
    /// Call sites resolved to a unique workspace def.
    pub resolved_edges: usize,
    /// Whether the root had README.md and DESIGN.md (doc cross-refs are
    /// only enforced when both exist, so fixture roots stay quiet).
    pub has_docs: bool,
    /// README.md + DESIGN.md text when present.
    pub docs_text: String,
    /// Transitive `autoac-*` dependency closure per crate dir name, from
    /// the crates' Cargo.toml files. Call edges may only point into a
    /// caller's closure — a def in a crate the caller cannot even link
    /// against is never a resolution candidate.
    pub dep_closure: HashMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Loads `root` — every `crates/*/{src,tests,benches}` tree plus the
    /// root package's `src/` and `tests/` — and builds the call graph.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<_> = match fs::read_dir(&crates_dir) {
            Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_dir()).collect(),
            Err(_) => Vec::new(),
        };
        crate_dirs.sort();
        for dir in crate_dirs {
            let krate = dir.file_name().unwrap_or_default().to_string_lossy().to_string();
            load_package(root, &dir, &krate, &mut files)?;
        }
        // The root package (integration driver).
        if root.join("src").is_dir() || root.join("tests").is_dir() {
            load_package(root, root, "autoac", &mut files)?;
        }

        let mut docs_text = String::new();
        let mut has_docs = true;
        for doc in ["README.md", "DESIGN.md"] {
            match fs::read_to_string(root.join(doc)) {
                Ok(t) => docs_text.push_str(&t),
                Err(_) => has_docs = false,
            }
        }

        let mut ws = Workspace {
            files,
            calls: HashMap::new(),
            call_sites: 0,
            resolved_edges: 0,
            has_docs,
            docs_text,
            dep_closure: load_dep_closure(root),
        };
        ws.build_call_graph();
        Ok(ws)
    }

    /// All fn defs as `(FnId, &FnDef)` in deterministic order.
    pub fn fn_defs(&self) -> impl Iterator<Item = (FnId, &super::source::FnDef)> {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| f.fns.iter().enumerate().map(move |(di, d)| ((fi, di), d)))
    }

    /// BFS over resolved edges from `entries`; returns the reachable set
    /// (including the entries themselves).
    pub fn reachable(&self, entries: &[FnId]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = entries.iter().copied().collect();
        let mut queue: VecDeque<FnId> = entries.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if let Some(calls) = self.calls.get(&id) {
                for (_, res) in calls {
                    if let Resolution::Unique(next) = res {
                        if seen.insert(*next) {
                            queue.push_back(*next);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Ambiguous call names reached from `reachable` fns, with candidate
    /// counts — the analyzer's explicit blind-spot report.
    pub fn ambiguous_from(&self, reachable: &BTreeSet<FnId>) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for id in reachable {
            if let Some(calls) = self.calls.get(id) {
                for (site, res) in calls {
                    if let Resolution::Ambiguous(n) = res {
                        out.insert(site.name.clone(), *n);
                    }
                }
            }
        }
        out
    }

    fn build_call_graph(&mut self) {
        // Def indices. Only Lib files define call-graph nodes; bins,
        // tests, and benches consume the graph but nothing dispatches
        // back into them.
        let mut methods: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut typed: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut free: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut free_in_crate: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut by_mod: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            if file.file_kind != FileKind::Lib {
                continue;
            }
            let stem = file_stem(&file.rel);
            for (di, def) in file.fns.iter().enumerate() {
                if def.in_test {
                    continue;
                }
                let id = (fi, di);
                match &def.impl_type {
                    Some(ty) => {
                        methods.entry(&def.name).or_default().push(id);
                        typed.entry((ty, &def.name)).or_default().push(id);
                    }
                    None => {
                        free.entry(&def.name).or_default().push(id);
                        free_in_crate.entry((&file.krate, &def.name)).or_default().push(id);
                        by_mod.entry((stem, &def.name)).or_default().push(id);
                        for m in &def.mods {
                            by_mod.entry((m, &def.name)).or_default().push(id);
                        }
                    }
                }
            }
        }

        let empty = BTreeSet::new();
        let files = &self.files;
        let dep_closure = &self.dep_closure;
        // Candidates outside the caller's dependency closure are dropped
        // before the uniqueness decision: a def the caller cannot link
        // against must neither resolve the call nor make it ambiguous.
        let pick = |caller: &str, v: Option<&Vec<FnId>>| -> Option<Resolution> {
            let closure = dep_closure.get(caller).unwrap_or(&empty);
            let ids: Vec<FnId> = v?
                .iter()
                .copied()
                .filter(|&(fi, _)| {
                    let k = files[fi].krate.as_str();
                    k == caller || closure.contains(k)
                })
                .collect();
            match ids.len() {
                1 => Some(Resolution::Unique(ids[0])),
                0 => None,
                n => Some(Resolution::Ambiguous(n)),
            }
        };

        let mut calls: HashMap<FnId, Vec<(CallSite, Resolution)>> = HashMap::new();
        let mut n_sites = 0usize;
        let mut n_edges = 0usize;
        for (fi, file) in self.files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                let sites = collect_call_sites(file, def.body);
                let mut resolved = Vec::with_capacity(sites.len());
                for site in sites {
                    n_sites += 1;
                    let name = site.name.as_str();
                    let caller = file.krate.as_str();
                    let res = match &site.kind {
                        CallKind::Method if STD_SHADOWED_METHODS.contains(&name) => None,
                        CallKind::Method => pick(caller, methods.get(name)),
                        CallKind::Qualified(q) => {
                            let q = if q == "Self" {
                                def.impl_type.as_deref().unwrap_or("Self")
                            } else {
                                q.as_str()
                            };
                            if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                                pick(caller, typed.get(&(q, name)))
                            } else {
                                pick(caller, by_mod.get(&(q, name)))
                                    .or_else(|| pick(caller, free.get(name)))
                            }
                        }
                        CallKind::Bare => pick(caller, free_in_crate.get(&(caller, name)))
                            .or_else(|| pick(caller, free.get(name))),
                    }
                    .unwrap_or(Resolution::External);
                    if matches!(res, Resolution::Unique(_)) {
                        n_edges += 1;
                    }
                    resolved.push((site, res));
                }
                calls.insert((fi, di), resolved);
            }
        }
        self.calls = calls;
        self.call_sites = n_sites;
        self.resolved_edges = n_edges;
    }
}

/// Words that look like `word(` in source without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "let", "else",
    "unsafe", "where", "impl", "dyn", "ref", "mut", "box", "await",
];

/// Extracts classified call sites from a fn body token range.
pub fn collect_call_sites(file: &SourceFile, body: (usize, usize)) -> Vec<CallSite> {
    let (a, b) = body;
    let mut out = Vec::new();
    if b <= a {
        return out;
    }
    for i in a..=b.min(file.toks.len().saturating_sub(1)) {
        if file.toks[i].kind != super::lexer::TokKind::Ident {
            continue;
        }
        let name = file.tok_text(i);
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // The next code token must open the argument list.
        let Some(n) = file.next_code(i) else { continue };
        if !file.is_punct(n, '(') {
            continue;
        }
        let Some(p) = file.prev_code(i) else { continue };
        if file.is_ident(p, "fn") {
            continue; // definition, not a call
        }
        let kind = if file.is_punct(p, '.') {
            CallKind::Method
        } else if file.is_punct(p, ':') && file.prev_code(p).is_some_and(|pp| file.is_punct(pp, ':'))
        {
            // Walk back over `::` to the qualifier's last segment.
            let qual = file
                .prev_code(p)
                .and_then(|pp| file.prev_code(pp))
                .filter(|&q| file.toks[q].kind == super::lexer::TokKind::Ident)
                .map(|q| file.tok_text(q).to_string());
            match qual {
                Some(q) => CallKind::Qualified(q),
                None => CallKind::Bare, // `<T as Trait>::call(` etc.
            }
        } else {
            CallKind::Bare
        };
        out.push(CallSite {
            name: name.to_string(),
            kind,
            tok: i,
            line: file.toks[i].line,
        });
    }
    out
}

/// Loads one package's `src/`, `src/bin/`, `tests/`, `benches/` trees.
fn load_package(
    root: &Path,
    pkg: &Path,
    krate: &str,
    files: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let trees: [(&str, FileKind); 3] =
        [("src", FileKind::Lib), ("tests", FileKind::Test), ("benches", FileKind::Bench)];
    for (sub, kind) in trees {
        let dir = pkg.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let kind = if kind == FileKind::Lib && rel.contains("/src/bin/") {
                FileKind::Bin
            } else {
                kind
            };
            let text = fs::read_to_string(&path)?;
            files.push(SourceFile::parse(&rel, krate, kind, text));
        }
    }
    Ok(())
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// File stem of a repo-relative path (`crates/serve/src/http.rs` → `http`).
pub fn file_stem(rel: &str) -> &str {
    rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs")
}

/// Direct `autoac-*` dependencies named in one Cargo.toml's
/// `[dependencies]` table (both `autoac-x.workspace = true` and
/// `autoac-x = { … }` spellings).
fn direct_deps(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(rest) = line.strip_prefix("autoac-") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                deps.push(name);
            }
        }
    }
    deps
}

/// Transitive dependency closure per crate dir name, read from
/// `crates/*/Cargo.toml` plus the root package manifest (`autoac`).
/// Trees without manifests (fixture roots) get an empty map, which
/// restricts call resolution to same-crate defs.
fn load_dep_closure(root: &Path) -> HashMap<String, BTreeSet<String>> {
    let mut direct: HashMap<String, Vec<String>> = HashMap::new();
    if let Ok(rd) = fs::read_dir(root.join("crates")) {
        for entry in rd.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if let Ok(manifest) = fs::read_to_string(entry.path().join("Cargo.toml")) {
                direct.insert(name, direct_deps(&manifest));
            }
        }
    }
    if let Ok(manifest) = fs::read_to_string(root.join("Cargo.toml")) {
        direct.insert("autoac".into(), direct_deps(&manifest));
    }
    let mut closure = HashMap::new();
    for krate in direct.keys() {
        let mut seen = BTreeSet::new();
        let mut queue: Vec<&str> = direct[krate].iter().map(String::as_str).collect();
        while let Some(dep) = queue.pop() {
            if seen.insert(dep.to_string()) {
                if let Some(next) = direct.get(dep) {
                    queue.extend(next.iter().map(String::as_str));
                }
            }
        }
        closure.insert(krate.clone(), seen);
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::source::FileKind;

    fn ws_from(specs: &[(&str, &str, FileKind, &str)]) -> Workspace {
        let files = specs
            .iter()
            .map(|(rel, krate, kind, text)| SourceFile::parse(rel, krate, *kind, text.to_string()))
            .collect();
        let mut ws = Workspace {
            files,
            calls: HashMap::new(),
            call_sites: 0,
            resolved_edges: 0,
            has_docs: false,
            docs_text: String::new(),
            dep_closure: HashMap::new(),
        };
        ws.build_call_graph();
        ws
    }

    #[test]
    fn method_and_qualified_calls_resolve_uniquely() {
        let ws = ws_from(&[
            (
                "crates/a/src/lib.rs",
                "a",
                FileKind::Lib,
                "pub struct Foo;\nimpl Foo { pub fn only_method(&self) {} }\npub fn entry(f: &Foo) { f.only_method(); Foo::only_method(f); helper(); }\npub fn helper() {}\n",
            ),
        ]);
        let entry = ws.fn_defs().find(|(_, d)| d.name == "entry").unwrap().0;
        let reached = ws.reachable(&[entry]);
        let names: Vec<&str> = reached
            .iter()
            .map(|&(fi, di)| ws.files[fi].fns[di].name.as_str())
            .collect();
        assert!(names.contains(&"only_method"), "{names:?}");
        assert!(names.contains(&"helper"), "{names:?}");
    }

    #[test]
    fn colliding_free_fn_and_method_resolve_by_call_shape() {
        // `attrs` exists both as a free fn and a method (the real repo's
        // serve::server::attrs vs InferenceModel::attrs) — the call shape
        // must keep them apart.
        let ws = ws_from(&[
            (
                "crates/a/src/lib.rs",
                "a",
                FileKind::Lib,
                "pub struct M;\nimpl M { pub fn attrs(&self) { deep_method(); } }\nfn deep_method() {}\npub fn attrs() { deep_free(); }\nfn deep_free() {}\npub fn entry(m: &M) { attrs(); m.attrs(); }\n",
            ),
        ]);
        let entry = ws.fn_defs().find(|(_, d)| d.name == "entry").unwrap().0;
        let reached = ws.reachable(&[entry]);
        let names: Vec<&str> = reached
            .iter()
            .map(|&(fi, di)| ws.files[fi].fns[di].name.as_str())
            .collect();
        assert!(names.contains(&"deep_free"), "{names:?}");
        assert!(names.contains(&"deep_method"), "{names:?}");
    }

    #[test]
    fn ambiguous_methods_are_reported_not_guessed() {
        let ws = ws_from(&[
            (
                "crates/a/src/lib.rs",
                "a",
                FileKind::Lib,
                "pub struct A;\npub struct B;\nimpl A { pub fn forward(&self) {} }\nimpl B { pub fn forward(&self) {} }\npub fn entry(x: &A) { x.forward(); }\n",
            ),
        ]);
        let entry = ws.fn_defs().find(|(_, d)| d.name == "entry").unwrap().0;
        let reached = ws.reachable(&[entry]);
        let amb = ws.ambiguous_from(&reached);
        assert_eq!(amb.get("forward"), Some(&2));
        // Neither forward impl gets pulled in.
        assert_eq!(reached.len(), 1);
    }

    #[test]
    fn test_mod_fns_do_not_define_graph_nodes() {
        let ws = ws_from(&[(
            "crates/a/src/lib.rs",
            "a",
            FileKind::Lib,
            "pub fn entry() { helper(); }\n#[cfg(test)]\nmod tests {\n    pub fn helper() { super::entry(); }\n}\npub fn helper() {}\n",
        )]);
        let entry = ws.fn_defs().find(|(_, d)| d.name == "entry").unwrap().0;
        let reached = ws.reachable(&[entry]);
        let helpers: Vec<bool> = reached
            .iter()
            .map(|&(fi, di)| ws.files[fi].fns[di].in_test)
            .collect();
        assert!(helpers.iter().all(|t| !t), "test-mod helper must not be a node");
    }
}
