//! Whole-workspace static analysis: token-level lexing, a brace-matched
//! item tree, an approximate call graph, and four program-wide contract
//! analyses (panic-reachability on the serving path, env-var contracts,
//! RNG-stream discipline, unsafe/SAFETY audit).
//!
//! Layering:
//!
//! - [`lexer`] — total, lossless tokenizer for Rust source. Every input
//!   lexes; token texts concatenate back to the input byte-for-byte.
//! - [`source`] — per-file structure over the token stream: fn defs with
//!   body ranges, impl/trait method contexts, `#[cfg(test)]` regions,
//!   loop regions, `unsafe` sites, and the allow-marker index.
//! - [`workspace`] — loads every crate in the workspace into
//!   [`source::SourceFile`]s and builds the approximate call graph
//!   (defs × classified call sites, unique-name resolution, explicit
//!   ambiguity reporting).
//! - [`rules`] — the four whole-program analyses plus the migrated
//!   single-file lint rules, all emitting [`crate::diag::Diagnostic`]s.

pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;
