//! Per-file structural model over the token stream: a brace-matched item
//! tree (modules, fns, impls/traits, loops, unsafe sites) plus the
//! allow-marker index.
//!
//! The tree is approximate in the ways a hand-rolled analyzer must be —
//! it tracks brace pairing and a small pending-item state machine rather
//! than parsing full Rust — but because it runs on *typed tokens*, braces
//! in strings, chars, or comments can never desync it, which was the
//! fundamental limit of the old line scanner.

use super::lexer::{lex, TokKind};

/// A token with owned span indices into the file text (the borrow-free
/// sibling of [`super::lexer::Tok`], so files can own text and tokens
/// together).
#[derive(Debug, Clone, Copy)]
pub struct STok {
    /// Token classification.
    pub kind: TokKind,
    /// Byte range in the file text.
    pub start: usize,
    /// End of the byte range.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

/// Which compilation role a file plays (decides which rules apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` (not `src/bin/`).
    Lib,
    /// Application code under `src/bin/`.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Benchmarks under `benches/`.
    Bench,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name, e.g. `handle_connection`.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body (open brace inclusive, close brace
    /// inclusive). Empty for declarations without a body.
    pub body: (usize, usize),
    /// Self type of the enclosing `impl`/`trait` block, when any — this
    /// is what makes a def a *method* for call resolution.
    pub impl_type: Option<String>,
    /// Inline-module path from the file root, e.g. `["signals"]`.
    pub mods: Vec<String>,
    /// True when the def lives inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// True for `pub fn` (exactly; `pub(crate) fn` is not public API).
    pub is_pub: bool,
}

/// What kind of `unsafe` occurrence a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn …`.
    Fn,
    /// `unsafe impl …`.
    Impl,
    /// `unsafe trait …`.
    Trait,
}

/// One `unsafe` keyword occurrence.
#[derive(Debug, Clone, Copy)]
pub struct UnsafeSite {
    /// Index of the `unsafe` token.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Occurrence kind.
    pub kind: UnsafeKind,
}

/// A parsed `lint:allow(...)` / `analyze:allow(...)` marker.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// `lint` or `analyze` — which scheme the marker uses.
    pub scheme: &'static str,
    /// The rule (or rule group) named in the marker, `_` → `-` folded.
    pub rule: String,
    /// Free-text justification (everything after the first comma). Empty
    /// when the marker carries none — the analyzer reports that itself.
    pub reason: String,
    /// 1-based line the marker sits on.
    pub line: u32,
}

/// A lexed file plus its structural index.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// Crate directory name (`serve`, `tensor`, …; `autoac` for the root
    /// package).
    pub krate: String,
    /// Role of the file.
    pub file_kind: FileKind,
    /// The full source text.
    pub text: String,
    /// The lossless token stream.
    pub toks: Vec<STok>,
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Token-index ranges (inclusive) lying inside `#[cfg(test)]` modules.
    pub test_regions: Vec<(usize, usize)>,
    /// Token-index ranges (inclusive) of loop bodies.
    pub loop_regions: Vec<(usize, usize)>,
    /// Every `unsafe` keyword occurrence.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// All allow markers, in source order.
    pub allows: Vec<AllowMarker>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(rel: &str, krate: &str, file_kind: FileKind, text: String) -> SourceFile {
        let toks: Vec<STok> = lex(&text)
            .iter()
            .map(|t| {
                let start = t.text.as_ptr() as usize - text.as_ptr() as usize;
                STok { kind: t.kind, start, end: start + t.text.len(), line: t.line }
            })
            .collect();
        let mut file = SourceFile {
            rel: rel.to_string(),
            krate: krate.to_string(),
            file_kind,
            text,
            toks,
            fns: Vec::new(),
            test_regions: Vec::new(),
            loop_regions: Vec::new(),
            unsafe_sites: Vec::new(),
            allows: Vec::new(),
        };
        build_structure(&mut file);
        file.allows = collect_allow_markers(&file);
        file
    }

    /// The text of token `i`.
    pub fn tok_text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.text[t.start..t.end]
    }

    /// True when token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.toks[i].kind == TokKind::Ident && self.tok_text(i) == name
    }

    /// True when token `i` is the punctuation byte `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks[i].kind == TokKind::Punct && self.tok_text(i) == c.to_string().as_str()
    }

    /// Index of the previous non-trivia token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !is_trivia(self.toks[j].kind))
    }

    /// Index of the next non-trivia token after `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.toks.len()).find(|&j| !is_trivia(self.toks[j].kind))
    }

    /// True when token index `i` lies inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// True when token index `i` lies inside a loop body.
    pub fn in_loop(&self, i: usize) -> bool {
        self.loop_regions.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// Allow markers that silence a finding on `line` for `rule` under
    /// `scheme` (marker on the same line or the one above). Returns the
    /// first matching marker.
    pub fn allow_for(&self, scheme: &str, rule: &str, line: u32) -> Option<&AllowMarker> {
        self.allows.iter().find(|m| {
            m.scheme == scheme
                && (m.line == line || m.line + 1 == line)
                && marker_rule_matches(&m.rule, rule)
        })
    }
}

fn is_trivia(k: TokKind) -> bool {
    matches!(k, TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment)
}

/// Marker rule spellings: the full rule id, or its shorthand (the id up
/// to the first `-`), so `lint:allow(unwrap)` silences `unwrap-in-lib`
/// and `analyze:allow(panic, …)` silences `panic-reachability`.
fn marker_rule_matches(named: &str, rule: &str) -> bool {
    if named == rule {
        return true;
    }
    let shorthand: &str = match rule {
        "unwrap-in-lib" => "unwrap",
        "raw-alloc-in-hotpath" => "raw-alloc",
        "instant-in-kernel-loop" => "instant",
        "op-gradcheck-coverage" => "gradcheck",
        "eprintln-in-lib" => "eprintln",
        "dispatch-parity-coverage" => "dispatch-parity",
        "panic-reachability" => "panic",
        "env-contract" => "env",
        "rng-discipline" => "rng",
        "unsafe-safety" => "unsafe",
        _ => return false,
    };
    named == shorthand
}

/// Extracts `lint:allow(...)`/`analyze:allow(...)` markers from comment
/// tokens. Reason grammar: everything after the first comma up to the
/// last `)` in the comment (so reasons may themselves contain parens).
fn collect_allow_markers(file: &SourceFile) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for (i, t) in file.toks.iter().enumerate() {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = file.tok_text(i);
        // Doc comments document the marker grammar itself (rule tables,
        // module docs); only plain comments carry live markers.
        if text.starts_with("///") || text.starts_with("//!")
            || text.starts_with("/**") || text.starts_with("/*!")
        {
            continue;
        }
        for scheme in ["lint", "analyze"] {
            let tag = format!("{scheme}:allow(");
            let mut from = 0;
            while let Some(pos) = text[from..].find(&tag) {
                let args_start = from + pos + tag.len();
                let rest = &text[args_start..];
                // The marker's argument list ends at the last `)` in the
                // comment (reasons may contain parens of their own).
                let Some(close) = rest.rfind(')') else { break };
                let args = &rest[..close];
                let (rule, reason) = match args.split_once(',') {
                    Some((r, why)) => (r, why.trim()),
                    None => (args, ""),
                };
                // Count the line offset of the marker inside a multi-line
                // block comment.
                let line_off = text[..from + pos].matches('\n').count() as u32;
                out.push(AllowMarker {
                    scheme,
                    rule: rule.trim().replace('_', "-"),
                    reason: reason.to_string(),
                    line: t.line + line_off,
                });
                from = args_start + close;
            }
        }
    }
    out
}

/// What a pending open brace will become.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Opened {
    Mod { test: bool },
    Fn { def: usize },
    ImplOrTrait,
    Loop,
    Other,
}

/// One brace-matching pass that builds fns, test/loop regions, impl
/// contexts, and unsafe sites.
fn build_structure(file: &mut SourceFile) {
    let code: Vec<usize> =
        (0..file.toks.len()).filter(|&i| !is_trivia(file.toks[i].kind)).collect();

    let mut stack: Vec<Opened> = Vec::new();
    let mut mod_path: Vec<String> = Vec::new();
    let mut impl_stack: Vec<String> = Vec::new();
    let mut test_open: Vec<usize> = Vec::new();
    let mut loop_open: Vec<usize> = Vec::new();
    let mut fn_open: Vec<usize> = Vec::new(); // indices into file.fns

    // Pending-item state, consumed by the next `{` (or cleared by `;`).
    let mut pending_cfg_test = false;
    let mut pending_mod: Option<(String, bool)> = None;
    let mut pending_fn: Option<usize> = None; // index into file.fns
    let mut pending_impl: Option<String> = None;
    let mut pending_loop = false;

    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let tok = file.toks[i];
        match tok.kind {
            TokKind::Punct if file.is_punct(i, '#') => {
                // `#[cfg(test)]` attribute — token shape # [ cfg ( test ) ]
                if let Some(close) = attr_end(file, &code, k) {
                    let body: Vec<&str> =
                        code[k + 1..=close].iter().map(|&j| file.tok_text(j)).collect();
                    if body.len() >= 6 && body[1] == "cfg" && body[3] == "test" {
                        pending_cfg_test = true;
                    }
                    k = close + 1;
                    continue;
                }
            }
            TokKind::Ident => match file.tok_text(i) {
                "mod" => {
                    if let Some(nk) = code.get(k + 1) {
                        if file.toks[*nk].kind == TokKind::Ident {
                            pending_mod =
                                Some((file.tok_text(*nk).to_string(), pending_cfg_test));
                            pending_cfg_test = false;
                            k += 2;
                            continue;
                        }
                    }
                }
                "fn" => {
                    // `#[cfg(test)] fn helper` — attribute on a fn, not a
                    // module: the flag must not leak to a later mod.
                    pending_cfg_test = false;
                    if let Some(&nk) = code.get(k + 1) {
                        if file.toks[nk].kind == TokKind::Ident {
                            let is_pub = is_plain_pub_before(file, &code, k);
                            file.fns.push(FnDef {
                                name: file.tok_text(nk).to_string(),
                                line: tok.line,
                                body: (0, 0),
                                impl_type: impl_stack.last().cloned(),
                                mods: mod_path.clone(),
                                in_test: !test_open.is_empty(),
                                is_pub,
                            });
                            pending_fn = Some(file.fns.len() - 1);
                            k += 2;
                            continue;
                        }
                    }
                }
                "impl" | "trait" => {
                    if pending_fn.is_none() {
                        // `-> impl Trait` inside a fn signature must not
                        // open an impl context; a real impl/trait item is
                        // never pending behind a fn.
                        pending_impl = Some(impl_self_type(file, &code, k));
                    }
                }
                "for" | "while" | "loop" => {
                    let impl_for = file.tok_text(i) == "for"
                        && file.prev_code(i).is_some_and(|p| {
                            matches!(file.toks[p].kind, TokKind::Ident)
                                || file.is_punct(p, '>')
                        });
                    let hrtb = file.tok_text(i) == "for"
                        && file.next_code(i).is_some_and(|n| file.is_punct(n, '<'));
                    if !impl_for && !hrtb && pending_fn.is_none() && pending_impl.is_none() {
                        pending_loop = true;
                    }
                }
                "unsafe" => {
                    let kind = match file.next_code(i).map(|n| file.tok_text(n)) {
                        Some("{") => UnsafeKind::Block,
                        Some("fn") => UnsafeKind::Fn,
                        Some("impl") => UnsafeKind::Impl,
                        Some("trait") => UnsafeKind::Trait,
                        _ => UnsafeKind::Block, // `unsafe extern`, edge forms
                    };
                    file.unsafe_sites.push(UnsafeSite { tok: i, line: tok.line, kind });
                }
                _ => {}
            },
            TokKind::Punct => match file.tok_text(i) {
                ";" => {
                    // Declarations without bodies: `mod x;`, trait fn
                    // decls, `for` seen in non-loop positions.
                    if let Some(def) = pending_fn.take() {
                        // Body-less decl: drop the def (nothing to scan).
                        if def + 1 == file.fns.len() {
                            file.fns.pop();
                        }
                    }
                    pending_mod = None;
                    pending_loop = false;
                    pending_impl = None;
                }
                "{" => {
                    let opened = if let Some(def) = pending_fn.take() {
                        file.fns[def].body.0 = i;
                        fn_open.push(def);
                        Opened::Fn { def }
                    } else if let Some((name, test)) = pending_mod.take() {
                        mod_path.push(name);
                        if test && test_open.is_empty() {
                            test_open.push(i);
                        } else if test {
                            test_open.push(usize::MAX); // nested; outer wins
                        }
                        Opened::Mod { test }
                    } else if let Some(ty) = pending_impl.take() {
                        impl_stack.push(ty);
                        Opened::ImplOrTrait
                    } else if pending_loop {
                        loop_open.push(i);
                        Opened::Loop
                    } else {
                        Opened::Other
                    };
                    // A consumed `{` resolves every pending item.
                    pending_loop = false;
                    pending_mod = None;
                    pending_impl = None;
                    stack.push(opened);
                }
                "}" => match stack.pop() {
                    Some(Opened::Fn { def }) => {
                        file.fns[def].body.1 = i;
                        fn_open.pop();
                    }
                    Some(Opened::Mod { test }) => {
                        mod_path.pop();
                        if test {
                            if let Some(open) = test_open.pop() {
                                if open != usize::MAX {
                                    file.test_regions.push((open, i));
                                }
                            }
                        }
                    }
                    Some(Opened::ImplOrTrait) => {
                        impl_stack.pop();
                    }
                    Some(Opened::Loop) => {
                        if let Some(open) = loop_open.pop() {
                            file.loop_regions.push((open, i));
                        }
                    }
                    _ => {}
                },
                _ => {}
            },
            _ => {}
        }
        k += 1;
    }
    // Unclosed fns (unbalanced braces mid-edit): close at EOF so body
    // ranges stay usable.
    for def in fn_open {
        file.fns[def].body.1 = file.toks.len().saturating_sub(1);
    }
}

/// If `code[k]` is `#` and `code[k+1]` is `[`, returns the code index of
/// the matching `]`.
fn attr_end(file: &SourceFile, code: &[usize], k: usize) -> Option<usize> {
    if !file.is_punct(*code.get(k + 1)?, '[') {
        return None;
    }
    let mut depth = 0usize;
    for (off, &j) in code[k + 1..].iter().enumerate() {
        if file.is_punct(j, '[') {
            depth += 1;
        } else if file.is_punct(j, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1 + off);
            }
        }
    }
    None
}

/// True when the token right before `code[k]` (the `fn` keyword) is a
/// bare `pub` (not `pub(crate)`, whose last token before `fn` is `)`).
fn is_plain_pub_before(file: &SourceFile, code: &[usize], k: usize) -> bool {
    k > 0 && file.is_ident(code[k - 1], "pub")
}

/// Self-type heuristic for `impl …` / `trait …` headers: the first ident
/// at angle-depth 0 after `for` (when present before the body brace),
/// else the first non-keyword ident after the header keyword's generics.
fn impl_self_type(file: &SourceFile, code: &[usize], k: usize) -> String {
    let mut angle = 0i32;
    let mut after_for = false;
    let mut first: Option<String> = None;
    let mut first_after_for: Option<String> = None;
    for &j in &code[k + 1..] {
        let text = file.tok_text(j);
        match file.toks[j].kind {
            TokKind::Punct => match text {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" => break,
                _ => {}
            },
            TokKind::Ident if angle == 0 => match text {
                "for" => after_for = true,
                "mut" | "dyn" | "const" | "unsafe" | "where" => {}
                name => {
                    if after_for && first_after_for.is_none() {
                        first_after_for = Some(name.to_string());
                    }
                    if first.is_none() {
                        first = Some(name.to_string());
                    }
                    if after_for {
                        break;
                    }
                }
            },
            _ => {}
        }
    }
    first_after_for.or(first).unwrap_or_else(|| "?".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", "x", FileKind::Lib, text.to_string())
    }

    #[test]
    fn fns_and_methods_carry_impl_and_test_context() {
        let f = parse(
            "pub fn free() {}\n\
             impl Foo { fn method(&self) {} }\n\
             impl Bar for Baz { fn trait_method(&self) {} }\n\
             trait Qux { fn with_default(&self) { self.x(); } }\n\
             #[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        let names: Vec<(&str, Option<&str>, bool, bool)> = f
            .fns
            .iter()
            .map(|d| (d.name.as_str(), d.impl_type.as_deref(), d.in_test, d.is_pub))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None, false, true),
                ("method", Some("Foo"), false, false),
                ("trait_method", Some("Baz"), false, false),
                ("with_default", Some("Qux"), false, false),
                ("t", None, true, false),
            ]
        );
    }

    #[test]
    fn impl_for_is_not_a_loop_but_real_loops_are() {
        let f = parse(
            "impl Iterator for Foo {\n    fn next(&mut self) {\n        for i in 0..3 { work(i); }\n    }\n}\n",
        );
        assert_eq!(f.loop_regions.len(), 1, "{:?}", f.loop_regions);
        let (a, b) = f.loop_regions[0];
        let span: String = (a..=b).map(|i| f.tok_text(i)).collect();
        assert!(span.contains("work"), "{span}");
    }

    #[test]
    fn return_position_impl_trait_does_not_open_impl_context() {
        let f = parse("fn f() -> impl Fn() { || {} }\nimpl Real { fn g(&self) {} }\n");
        assert_eq!(f.fns[1].impl_type.as_deref(), Some("Real"));
        assert_eq!(f.fns[0].impl_type, None);
    }

    #[test]
    fn unsafe_sites_classified() {
        let f = parse(
            "unsafe impl Send for P {}\n\
             unsafe fn raw() {}\n\
             fn f() { unsafe { danger(); } }\n",
        );
        let kinds: Vec<UnsafeKind> = f.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [UnsafeKind::Impl, UnsafeKind::Fn, UnsafeKind::Block]);
    }

    #[test]
    fn allow_markers_parse_rule_and_reason() {
        let f = parse(
            "fn f() {\n    x(); // analyze:allow(panic, bounds checked above (twice))\n    y(); // lint:allow(unwrap)\n}\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].scheme, "analyze");
        assert_eq!(f.allows[0].rule, "panic");
        assert_eq!(f.allows[0].reason, "bounds checked above (twice)");
        assert!(f.allow_for("analyze", "panic-reachability", 2).is_some());
        assert!(f.allow_for("analyze", "panic-reachability", 3).is_some(), "next-line carry");
        assert!(f.allow_for("lint", "unwrap-in-lib", 3).is_some());
        assert!(f.allow_for("lint", "unwrap-in-lib", 2).is_none());
    }

    #[test]
    fn cfg_test_on_fn_does_not_open_a_test_region() {
        let f = parse("#[cfg(test)]\nfn helper() {}\nmod real { fn g() {} }\n");
        assert!(f.test_regions.is_empty());
        assert!(!f.fns.iter().any(|d| d.in_test));
    }
}
