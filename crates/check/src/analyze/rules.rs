//! The four whole-program analyses over a loaded [`Workspace`]:
//!
//! - **panic-reachability** — every fn reachable from the serving entry
//!   points (`handle_connection`, `run_model_thread` in `autoac-serve`)
//!   must be panic-free: no `.unwrap()`/`.expect()`, no `panic!`-family
//!   macros, no slice indexing without a visible guard on the same base
//!   in the same fn. Silenced per-site with `analyze:allow(panic, why)`.
//! - **env-contract** — every `AUTOAC_*` name in the workspace must be in
//!   the checked registry; every `env::var("AUTOAC_*")` read must sit in
//!   a fn that calls the registry's strict parser for that variable; when
//!   README.md/DESIGN.md exist at the root, every registry entry must be
//!   documented in them and must actually occur in code (no stale knobs).
//! - **rng-discipline** — no entropy sources (`OsRng`, `thread_rng`), no
//!   time-derived seeds, `StdRng::from_state` only in the sanctioned
//!   checkpoint-resume paths, and per-batch stream derivation only inside
//!   `batch_rng` (seeding from `epoch`/`batch` anywhere else is exactly
//!   the ad-hoc stream that silently breaks bitwise reproducibility).
//! - **unsafe-safety** — every `unsafe` occurrence needs an adjacent
//!   SAFETY comment (same line or up to three lines above; `/// # Safety`
//!   doc sections count) naming the invariant that makes it sound.
//!
//! Allow markers use `analyze:allow(rule, reason)`; the reason is
//! mandatory — a marker without one is itself reported — and every
//! accepted suppression is recorded in the output's `allowed` list so the
//! baseline documents each one.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::Path;

use super::source::{FileKind, SourceFile, UnsafeKind};
use super::workspace::{FnId, Workspace};
use crate::diag::{Analysis, Diagnostic, Report};
use crate::lint;

/// Rule id for panic-reachability findings.
pub const RULE_PANIC: &str = "panic-reachability";
/// Rule id for env-var contract findings.
pub const RULE_ENV: &str = "env-contract";
/// Rule id for RNG-stream discipline findings.
pub const RULE_RNG: &str = "rng-discipline";
/// Rule id for the unsafe/SAFETY audit.
pub const RULE_UNSAFE: &str = "unsafe-safety";

/// Serving entry points the reachability pass starts from. `route()`
/// funnels every HTTP endpoint through `handle_connection`, and the model
/// thread consumes batches in `run_model_thread`; both live in
/// `autoac-serve`. A test in `tests/analyze_workspace.rs` asserts this
/// list stays in sync with the serve crate.
pub const SERVE_ENTRY_POINTS: &[&str] = &["handle_connection", "run_model_thread"];

/// The checked `AUTOAC_*` registry: variable name → the strict parser
/// every read site must go through.
pub const ENV_REGISTRY: &[(&str, &str)] = &[
    ("AUTOAC_CHECK", "parse_bool_env"),
    ("AUTOAC_FLIGHT", "parse_bool_env"),
    ("AUTOAC_KERNEL", "parse_kernel_env"),
    ("AUTOAC_NUM_THREADS", "parse_threads_env"),
    ("AUTOAC_OBS", "parse_bool_env"),
    ("AUTOAC_POOL", "parse_bool_env"),
    ("AUTOAC_SHARDS", "parse_shards_env"),
    ("AUTOAC_SLOW_TESTS", "parse_bool_env"),
    ("AUTOAC_TRACE", "parse_bool_env"),
];

/// Files whose `StdRng::from_state` use is sanctioned (checkpoint-resume
/// restores a serialized stream; everywhere else must derive streams from
/// seeds so runs stay replayable from the config alone).
const FROM_STATE_SANCTIONED: &[&str] = &[
    "crates/core/src/minibatch.rs",
    "crates/core/src/search.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/infer.rs",
];

/// One accepted suppression, recorded for the baseline.
#[derive(Debug, Clone)]
pub struct AllowedFinding {
    /// Rule that would have fired.
    pub rule: &'static str,
    /// `file:line` of the suppressed site.
    pub location: String,
    /// The marker's justification text.
    pub reason: String,
}

/// Workspace-level counters, exported into the baseline so coverage
/// regressions (an entry point dropping out, the graph shrinking) show up
/// as a diff even when findings stay at zero.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Files loaded.
    pub files: usize,
    /// Fn definitions indexed.
    pub fns: usize,
    /// Call sites classified.
    pub call_sites: usize,
    /// Call sites resolved to a unique workspace def.
    pub resolved_edges: usize,
    /// Fns reachable from the serving entry points.
    pub reachable_fns: usize,
    /// `unsafe` occurrences audited.
    pub unsafe_sites: usize,
    /// `env::var("AUTOAC_*")` read sites checked.
    pub env_reads: usize,
}

/// Everything one `--analyze` run produces.
#[derive(Debug, Clone, Default)]
pub struct AnalysisOutput {
    /// Non-suppressed findings (lint rules + the four analyses).
    pub report: Report,
    /// Accepted suppressions with their reasons.
    pub allowed: Vec<AllowedFinding>,
    /// Entry points found, as `name @ file:line`.
    pub entry_points: Vec<String>,
    /// Ambiguous call names hit from reachable code → candidate count
    /// (the analyzer's explicit blind spots).
    pub ambiguous: BTreeMap<String, usize>,
    /// Coverage counters.
    pub stats: Stats,
}

impl AnalysisOutput {
    /// Deterministic pretty-JSON document (the `results/ANALYSIS.json`
    /// baseline format). Hand-rolled; strings are escaped minimally.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n");
        s.push_str(&format!("  \"summary\": {},\n", self.report.json_summary()));
        s.push_str("  \"findings\": [");
        for (i, d) in self.report.diagnostics.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"analysis\": \"{}\", \"rule\": \"{}\", \"location\": \"{}\", \"message\": \"{}\"}}",
                d.analysis.name(),
                d.rule,
                esc(&d.location),
                esc(&d.message)
            ));
        }
        s.push_str(if self.report.diagnostics.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"location\": \"{}\", \"reason\": \"{}\"}}",
                a.rule,
                esc(&a.location),
                esc(&a.reason)
            ));
        }
        s.push_str(if self.allowed.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"entry_points\": [");
        for (i, e) in self.entry_points.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\"", esc(e)));
        }
        s.push_str(if self.entry_points.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"ambiguous_at_reachable_calls\": {");
        for (i, (name, n)) in self.ambiguous.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\": {}", esc(name), n));
        }
        s.push_str(if self.ambiguous.is_empty() { "},\n" } else { "\n  },\n" });
        s.push_str(&format!(
            "  \"stats\": {{\"files\": {}, \"fns\": {}, \"call_sites\": {}, \"resolved_edges\": {}, \"reachable_fns\": {}, \"unsafe_sites\": {}, \"env_reads\": {}}}\n",
            self.stats.files,
            self.stats.fns,
            self.stats.call_sites,
            self.stats.resolved_edges,
            self.stats.reachable_fns,
            self.stats.unsafe_sites,
            self.stats.env_reads
        ));
        s.push_str("}\n");
        s
    }

    /// Human-readable rendering: findings (or a clean line) plus the
    /// coverage footer.
    pub fn render_text(&self) -> String {
        let mut out = self.report.render();
        out.push('\n');
        out.push_str(&format!(
            "entry points: {}\n",
            if self.entry_points.is_empty() { "NONE".into() } else { self.entry_points.join(", ") }
        ));
        out.push_str(&format!(
            "graph: {} fns, {}/{} calls resolved, {} reachable from serving; {} ambiguous name(s) at reachable calls\n",
            self.stats.fns,
            self.stats.resolved_edges,
            self.stats.call_sites,
            self.stats.reachable_fns,
            self.ambiguous.len()
        ));
        out.push_str(&format!(
            "audited: {} unsafe site(s), {} env read(s); {} allowed finding(s) with reasons",
            self.stats.unsafe_sites,
            self.stats.env_reads,
            self.allowed.len()
        ));
        out
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Loads `root` and runs the full analysis: migrated lint rules plus the
/// four whole-program analyses, all over one workspace load.
pub fn analyze_root(root: &Path) -> std::io::Result<AnalysisOutput> {
    let ws = Workspace::load(root)?;
    let mut out = analyze(&ws);
    // The migrated lint rules (library sources under crates/ only, same
    // scope as `autoac-lint` without --analyze).
    out.report.merge(lint::lint_workspace(&ws, root));
    Ok(out)
}

/// Runs the four whole-program analyses over a loaded workspace.
pub fn analyze(ws: &Workspace) -> AnalysisOutput {
    let mut out = AnalysisOutput::default();
    out.stats.files = ws.files.len();
    out.stats.fns = ws.fn_defs().count();
    out.stats.call_sites = ws.call_sites;
    out.stats.resolved_edges = ws.resolved_edges;

    panic_reachability(ws, &mut out);
    env_contract(ws, &mut out);
    rng_discipline(ws, &mut out);
    unsafe_audit(ws, &mut out);
    missing_reason_markers(ws, &mut out);
    out.report.inspected += ws.files.len();
    out
}

/// Emits a finding unless an `analyze:allow(rule, reason)` marker covers
/// the site; accepted suppressions are recorded with their reason.
fn emit(
    out: &mut AnalysisOutput,
    file: &SourceFile,
    analysis: Analysis,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let location = format!("{}:{}", file.rel, line);
    if let Some(marker) = file.allow_for("analyze", rule, line) {
        if !marker.reason.is_empty() {
            out.allowed.push(AllowedFinding { rule, location, reason: marker.reason.clone() });
            return;
        }
        // Reason-less markers do not suppress; the marker itself is also
        // reported by `missing_reason_markers`.
    }
    out.report.push(Diagnostic { analysis, rule, message, location });
}

/// Every `analyze:allow` marker must carry a reason — a bare one is a
/// finding in its own right, so the allowlist stays self-documenting.
fn missing_reason_markers(ws: &Workspace, out: &mut AnalysisOutput) {
    for file in &ws.files {
        for m in &file.allows {
            if m.scheme == "analyze" && m.reason.is_empty() {
                out.report.push(Diagnostic {
                    analysis: Analysis::Env,
                    rule: "allow-missing-reason",
                    message: format!(
                        "`analyze:allow({})` without a reason; write `analyze:allow({}, why)`",
                        m.rule, m.rule
                    ),
                    location: format!("{}:{}", file.rel, m.line),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// 1. panic-reachability
// ---------------------------------------------------------------------

/// Macro names whose invocation is an unconditional panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names a guard on the indexed base can be recognized by.
const GUARD_METHODS: &[&str] = &["len", "get", "get_mut", "is_empty"];

fn panic_reachability(ws: &Workspace, out: &mut AnalysisOutput) {
    // Entry points: the named serving fns in the serve crate's libraries.
    let mut entries: Vec<FnId> = Vec::new();
    for (id, def) in ws.fn_defs() {
        let file = &ws.files[id.0];
        if file.krate == "serve"
            && file.file_kind == FileKind::Lib
            && SERVE_ENTRY_POINTS.contains(&def.name.as_str())
        {
            entries.push(id);
            out.entry_points.push(format!("{} @ {}:{}", def.name, file.rel, def.line));
        }
    }
    let has_serve = ws.files.iter().any(|f| f.krate == "serve");
    if has_serve {
        for want in SERVE_ENTRY_POINTS {
            if !out.entry_points.iter().any(|e| e.starts_with(&format!("{want} @"))) {
                out.report.push(Diagnostic {
                    analysis: Analysis::Panic,
                    rule: RULE_PANIC,
                    message: format!(
                        "serving entry point `{want}` not found in autoac-serve — the \
                         reachability pass no longer covers the request path it anchored"
                    ),
                    location: "crates/serve".into(),
                });
            }
        }
    }

    let reachable: BTreeSet<FnId> = ws.reachable(&entries);
    out.stats.reachable_fns = reachable.len();
    out.ambiguous = ws.ambiguous_from(&reachable);

    for &(fi, di) in &reachable {
        let file = &ws.files[fi];
        let def = &file.fns[di];
        let (a, b) = def.body;
        if b <= a {
            continue;
        }
        // Idents whose bounds are visibly checked somewhere in this fn.
        let mut guarded: HashSet<&str> = HashSet::new();
        for i in a..=b {
            if file.toks[i].kind != super::lexer::TokKind::Ident {
                continue;
            }
            if GUARD_METHODS.contains(&file.tok_text(i)) {
                if let Some(dot) = file.prev_code(i) {
                    if file.is_punct(dot, '.') {
                        if let Some(base) = file.prev_code(dot) {
                            if file.toks[base].kind == super::lexer::TokKind::Ident {
                                guarded.insert(file.tok_text(base));
                            }
                        }
                    }
                }
            }
        }
        for i in a..=b {
            let line = file.toks[i].line;
            match file.toks[i].kind {
                super::lexer::TokKind::Ident => {
                    let name = file.tok_text(i);
                    let next_open = file.next_code(i).filter(|&n| file.is_punct(n, '('));
                    let after_dot =
                        file.prev_code(i).is_some_and(|p| file.is_punct(p, '.'));
                    if after_dot && next_open.is_some() && (name == "unwrap" || name == "expect") {
                        emit(
                            out,
                            file,
                            Analysis::Panic,
                            RULE_PANIC,
                            line,
                            format!(
                                "`.{name}()` in `{}` is reachable from serving entry points; \
                                 propagate the error or handle it",
                                def.name
                            ),
                        );
                    } else if PANIC_MACROS.contains(&name)
                        && file.next_code(i).is_some_and(|n| file.is_punct(n, '!'))
                    {
                        emit(
                            out,
                            file,
                            Analysis::Panic,
                            RULE_PANIC,
                            line,
                            format!(
                                "`{name}!` in `{}` is reachable from serving entry points",
                                def.name
                            ),
                        );
                    }
                }
                super::lexer::TokKind::Punct if file.tok_text(i) == "[" => {
                    // Indexing: `expr[` where expr ends in an ident, `)`,
                    // or `]`. Skip when the base ident has a visible
                    // len/get/is_empty guard in this fn.
                    let Some(p) = file.prev_code(i) else { continue };
                    // `expr[..]` takes the full range and never panics.
                    if let Some(a) = file.next_code(i) {
                        if let Some(b) = file.next_code(a) {
                            if let Some(c) = file.next_code(b) {
                                if file.is_punct(a, '.')
                                    && file.is_punct(b, '.')
                                    && file.is_punct(c, ']')
                                {
                                    continue;
                                }
                            }
                        }
                    }
                    let base = if file.toks[p].kind == super::lexer::TokKind::Ident {
                        let t = file.tok_text(p);
                        // `for x in [a, b]`, `return [..]` — a keyword
                        // before `[` means array literal, not indexing.
                        if matches!(t, "in" | "as" | "return" | "else" | "match" | "if" | "move") {
                            continue;
                        }
                        Some(t)
                    } else if file.is_punct(p, ')') || file.is_punct(p, ']') {
                        None
                    } else {
                        continue; // type position, array literal, attribute…
                    };
                    if let Some(name) = base {
                        if guarded.contains(name) {
                            continue;
                        }
                    }
                    let shown = base.unwrap_or("<expr>");
                    emit(
                        out,
                        file,
                        Analysis::Panic,
                        RULE_PANIC,
                        line,
                        format!(
                            "unguarded index `{shown}[…]` in `{}` is reachable from serving \
                             entry points; bounds-check or use `.get()`",
                            def.name
                        ),
                    );
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. env-contract
// ---------------------------------------------------------------------

fn env_contract(ws: &Workspace, out: &mut AnalysisOutput) {
    let registry: BTreeMap<&str, &str> = ENV_REGISTRY.iter().copied().collect();
    let mut seen_names: BTreeSet<String> = BTreeSet::new();

    for file in &ws.files {
        let mut reported: HashSet<String> = HashSet::new();
        for i in 0..file.toks.len() {
            match file.toks[i].kind {
                super::lexer::TokKind::Str | super::lexer::TokKind::RawStr => {
                    for name in autoac_words(file.tok_text(i)) {
                        seen_names.insert(name.clone());
                        if !registry.contains_key(name.as_str())
                            && reported.insert(name.clone())
                        {
                            emit(
                                out,
                                file,
                                Analysis::Env,
                                RULE_ENV,
                                file.toks[i].line,
                                format!(
                                    "`{name}` is not in the checked env registry \
                                     (analyze::rules::ENV_REGISTRY); register it with a \
                                     strict parser or rename it"
                                ),
                            );
                        }
                    }
                }
                super::lexer::TokKind::Ident if file.is_ident(i, "var") => {
                    // `env::var("AUTOAC_X")` — check the read goes through
                    // the registered strict parser in the same fn.
                    let Some(p) = file.prev_code(i) else { continue };
                    if !file.is_punct(p, ':') {
                        continue;
                    }
                    let qual = file
                        .prev_code(p)
                        .and_then(|pp| file.prev_code(pp))
                        .filter(|&q| file.is_ident(q, "env"));
                    if qual.is_none() {
                        continue;
                    }
                    let Some(open) = file.next_code(i).filter(|&n| file.is_punct(n, '(')) else {
                        continue;
                    };
                    let Some(arg) = file.next_code(open) else { continue };
                    if file.toks[arg].kind != super::lexer::TokKind::Str {
                        continue;
                    }
                    let lit = file.tok_text(arg).trim_matches('"');
                    if !lit.starts_with("AUTOAC_") {
                        continue;
                    }
                    out.stats.env_reads += 1;
                    let Some(parser) = registry.get(lit) else { continue };
                    let fn_body = enclosing_fn_body(file, i);
                    let strict = fn_body.is_some_and(|(a, b)| {
                        (a..=b).any(|j| file.is_ident(j, parser))
                    });
                    if !strict {
                        emit(
                            out,
                            file,
                            Analysis::Env,
                            RULE_ENV,
                            file.toks[i].line,
                            format!(
                                "`{lit}` is read without its strict parser `{parser}` in the \
                                 same fn; loose parsing silently mis-reads typos"
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    // Docs cross-reference + staleness: only against the real repo root
    // (fixture trees carry no README/DESIGN and skip this).
    if ws.has_docs {
        for (name, _) in ENV_REGISTRY {
            if !contains_word_text(&ws.docs_text, name) {
                out.report.push(Diagnostic {
                    analysis: Analysis::Env,
                    rule: RULE_ENV,
                    message: format!(
                        "registered env var `{name}` is documented in neither README.md nor \
                         DESIGN.md"
                    ),
                    location: "README.md".into(),
                });
            }
            if !seen_names.contains(*name) {
                out.report.push(Diagnostic {
                    analysis: Analysis::Env,
                    rule: RULE_ENV,
                    message: format!(
                        "registered env var `{name}` never occurs in the workspace — stale \
                         registry entry"
                    ),
                    location: "crates/check/src/analyze/rules.rs".into(),
                });
            }
        }
    }
}

/// `AUTOAC_*` words inside a string literal's text.
fn autoac_words(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0;
    while let Some(pos) = lit[i..].find("AUTOAC_") {
        let at = i + pos;
        let before_ok = at == 0
            || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let mut end = at + "AUTOAC_".len();
        while end < lit.len()
            && (bytes[end].is_ascii_uppercase() || bytes[end].is_ascii_digit() || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = lit[at..end].trim_end_matches('_');
        if before_ok && name.len() > "AUTOAC_".len() {
            out.push(name.to_string());
        }
        i = end;
    }
    out
}

fn contains_word_text(text: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// Smallest fn body containing token `i`.
fn enclosing_fn_body(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    file.fns
        .iter()
        .filter(|d| d.body.0 <= i && i <= d.body.1 && d.body.1 > d.body.0)
        .map(|d| d.body)
        .min_by_key(|(a, b)| b - a)
}

/// Name of the smallest fn containing token `i`.
fn enclosing_fn_name<'a>(file: &'a SourceFile, i: usize) -> Option<&'a str> {
    file.fns
        .iter()
        .filter(|d| d.body.0 <= i && i <= d.body.1 && d.body.1 > d.body.0)
        .min_by_key(|d| d.body.1 - d.body.0)
        .map(|d| d.name.as_str())
}

// ---------------------------------------------------------------------
// 3. rng-discipline
// ---------------------------------------------------------------------

fn rng_discipline(ws: &Workspace, out: &mut AnalysisOutput) {
    for file in &ws.files {
        let resume_ok = FROM_STATE_SANCTIONED.iter().any(|s| file.rel.ends_with(s))
            || file.rel.starts_with("crates/ckpt/")
            || matches!(file.file_kind, FileKind::Test | FileKind::Bench);
        for i in 0..file.toks.len() {
            if file.toks[i].kind != super::lexer::TokKind::Ident {
                continue;
            }
            let line = file.toks[i].line;
            match file.tok_text(i) {
                name @ ("OsRng" | "thread_rng") => {
                    emit(
                        out,
                        file,
                        Analysis::Rng,
                        RULE_RNG,
                        line,
                        format!(
                            "`{name}` draws OS entropy — even in tests this breaks bitwise \
                             reproducibility; use `StdRng::seed_from_u64` with a fixed seed"
                        ),
                    );
                }
                "from_state" => {
                    let qualified_stdrng = file
                        .prev_code(i)
                        .filter(|&p| file.is_punct(p, ':'))
                        .and_then(|p| file.prev_code(p))
                        .and_then(|pp| file.prev_code(pp))
                        .is_some_and(|q| file.is_ident(q, "StdRng"));
                    if qualified_stdrng && !resume_ok {
                        emit(
                            out,
                            file,
                            Analysis::Rng,
                            RULE_RNG,
                            line,
                            "`StdRng::from_state` outside the sanctioned checkpoint-resume \
                             paths; derive streams from seeds so runs replay from config alone"
                                .into(),
                        );
                    }
                }
                "seed_from_u64" => {
                    let Some(open) = file.next_code(i).filter(|&n| file.is_punct(n, '(')) else {
                        continue;
                    };
                    let args = balanced_paren_range(file, open);
                    let mut time_based = false;
                    let mut stream_idents = false;
                    for j in args.0..=args.1 {
                        if file.toks[j].kind != super::lexer::TokKind::Ident {
                            continue;
                        }
                        match file.tok_text(j) {
                            "SystemTime" | "Instant" | "now" | "elapsed" => time_based = true,
                            "epoch" | "batch" => stream_idents = true,
                            _ => {}
                        }
                    }
                    if time_based {
                        emit(
                            out,
                            file,
                            Analysis::Rng,
                            RULE_RNG,
                            line,
                            "time-derived RNG seed; seeds must come from config so runs are \
                             replayable"
                                .into(),
                        );
                    } else if stream_idents && enclosing_fn_name(file, i) != Some("batch_rng") {
                        emit(
                            out,
                            file,
                            Analysis::Rng,
                            RULE_RNG,
                            line,
                            "per-batch stream derived ad hoc from epoch/batch; use \
                             `core::sampler::batch_rng` — the one sanctioned batch-stream \
                             constructor"
                                .into(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Token range strictly inside the paren opened at `open` (inclusive
/// bounds; empty call → `(open+1, open)`).
fn balanced_paren_range(file: &SourceFile, open: usize) -> (usize, usize) {
    let mut depth = 0usize;
    for i in open..file.toks.len() {
        if file.is_punct(i, '(') {
            depth += 1;
        } else if file.is_punct(i, ')') {
            depth -= 1;
            if depth == 0 {
                return (open + 1, i.saturating_sub(1));
            }
        }
    }
    (open + 1, file.toks.len().saturating_sub(1))
}

// ---------------------------------------------------------------------
// 4. unsafe-safety
// ---------------------------------------------------------------------

fn unsafe_audit(ws: &Workspace, out: &mut AnalysisOutput) {
    for file in &ws.files {
        if file.unsafe_sites.is_empty() {
            continue;
        }
        // Lines covered by a comment mentioning "safety" (case-insensitive
        // — `// SAFETY:` and `/// # Safety` both count).
        let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
        for (i, t) in file.toks.iter().enumerate() {
            if !matches!(
                t.kind,
                super::lexer::TokKind::LineComment | super::lexer::TokKind::BlockComment
            ) {
                continue;
            }
            let text = file.tok_text(i);
            if text.to_ascii_lowercase().contains("safety") {
                let lines = text.matches('\n').count() as u32;
                for l in t.line..=t.line + lines {
                    safety_lines.insert(l);
                }
            }
        }
        for site in &file.unsafe_sites {
            let covered = (site.line.saturating_sub(3)..=site.line)
                .any(|l| safety_lines.contains(&l));
            if covered {
                continue;
            }
            let what = match site.kind {
                UnsafeKind::Block => "unsafe block",
                UnsafeKind::Fn => "unsafe fn",
                UnsafeKind::Impl => "unsafe impl",
                UnsafeKind::Trait => "unsafe trait",
            };
            emit(
                out,
                file,
                Analysis::Unsafe,
                RULE_UNSAFE,
                site.line,
                format!(
                    "{what} without an adjacent SAFETY comment; state the invariant that \
                     makes it sound (`// SAFETY: …`)"
                ),
            );
        }
        out.stats.unsafe_sites += file.unsafe_sites.len();
    }
}
