//! A hand-rolled token-level lexer for Rust source text.
//!
//! This is the foundation the whole static-analysis layer stands on: every
//! rule — migrated lint rules and the whole-program analyses alike —
//! matches against typed tokens instead of regexes over stripped lines, so
//! string literals, comments, lifetimes, and char literals can never be
//! confused with code again.
//!
//! Design constraints:
//!
//! - **Total**: lexing never fails. Malformed input (unterminated strings,
//!   stray bytes) degrades into best-effort tokens; analyses stay
//!   conservative rather than crashing on a file mid-edit.
//! - **Lossless**: concatenating every token's text reproduces the input
//!   byte-for-byte (property-tested in `tests/lexer_roundtrip.rs`). This
//!   is what makes line/column reporting and marker lookups trustworthy.
//! - **Faithful on the hard cases**: raw strings with any `#` count,
//!   raw byte strings, nested block comments, escape sequences in
//!   char/byte/string literals, lifetimes vs char literals, and
//!   maximal-munch identifiers (`foor"x"` is an ident then a string).
//!
//! The lexer does not classify keywords (callers compare ident text) and
//! emits each punctuation byte as its own token — multi-byte operators are
//! irrelevant to every analysis built on top, and single-byte puncts keep
//! the round-trip property trivially honest.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to (not including) the newline. Doc comments included.
    LineComment,
    /// `/* … */`, nested; unterminated runs to end of input.
    BlockComment,
    /// `"…"` or `b"…"` with escapes; unterminated runs to end of input.
    Str,
    /// `r"…"`, `r#"…"#`, `br"…"`, … — no escapes; closes on the
    /// hash-matched terminator; unterminated runs to end of input.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`, `'\u{1F600}'`.
    CharLit,
    /// `'a`, `'_`, `'static` — a tick followed by an identifier with no
    /// closing tick.
    Lifetime,
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*` (plus `r#ident`
    /// raw identifiers, emitted as one token).
    Ident,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// A single punctuation/operator byte: `{`, `}`, `(`, `.`, `!`, ….
    Punct,
}

/// One token: classification, exact source text, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// What this token is.
    pub kind: TokKind,
    /// The exact slice of the input this token covers.
    pub text: &'a str,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Tok<'_> {
    /// True for tokens that carry no code meaning (whitespace, comments).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }

    /// True when this token is exactly the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length of the raw-string literal starting at `i` (which must point at
/// the `r` / `b` prefix), or `None` if `i` does not start one. The length
/// runs to the hash-matched closing quote, or to end of input when
/// unterminated.
fn raw_string_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() || bytes[j] != b'r' {
            return None;
        }
    }
    debug_assert_eq!(bytes[j], b'r');
    j += 1;
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return None;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let have = bytes[j + 1..].iter().take_while(|&&b| b == b'#').count();
            if have >= hashes {
                return Some(j + 1 + hashes);
            }
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Length of the string literal starting at the opening quote at `i`
/// (escape-aware); runs to end of input when unterminated.
fn string_end(bytes: &[u8], i: usize) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j = (j + 2).min(bytes.len()),
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Decides whether the `'` at `i` opens a char literal or a lifetime, and
/// returns `(kind, end)`. Lifetime: tick + ident with no closing tick
/// right after the ident (`'a`, `'static`, `'_`). Everything else is
/// lexed as a char literal: escape form `'\…'`, or an arbitrary (possibly
/// multi-byte) char followed by `'`.
fn char_or_lifetime(bytes: &[u8], i: usize) -> (TokKind, usize) {
    debug_assert_eq!(bytes[i], b'\'');
    let rest = &bytes[i + 1..];
    if rest.is_empty() {
        return (TokKind::CharLit, bytes.len()); // lone trailing tick
    }
    if rest[0] == b'\\' {
        // Escape sequence: consume to the closing tick (handles \', \u{…}).
        let mut j = i + 2;
        let mut escaped = true;
        while j < bytes.len() {
            if escaped {
                escaped = false;
            } else if bytes[j] == b'\\' {
                escaped = true;
            } else if bytes[j] == b'\'' {
                return (TokKind::CharLit, j + 1);
            }
            j += 1;
        }
        return (TokKind::CharLit, bytes.len());
    }
    if is_ident_start(rest[0]) {
        // Could be 'a' (char) or 'a / 'abc (lifetime): scan the ident run
        // and check for a closing tick immediately after.
        let mut j = 1;
        while j < rest.len() && is_ident_continue(rest[j]) {
            j += 1;
        }
        if j < rest.len() && rest[j] == b'\'' && j == 1 {
            return (TokKind::CharLit, i + 1 + j + 1); // 'x'
        }
        return (TokKind::Lifetime, i + 1 + j);
    }
    // Non-ident char: find the closing tick within the next char (which
    // may be multi-byte UTF-8) — scan forward a short bounded window.
    let limit = rest.len().min(5); // max UTF-8 char (4) + closing tick
    for j in 1..=limit {
        if j < rest.len() && rest[j] == b'\'' {
            return (TokKind::CharLit, i + 1 + j + 1);
        }
    }
    // No closing tick nearby (e.g. a stray tick): emit the tick alone as
    // punctuation so the rest of the input still lexes.
    (TokKind::Punct, i + 1)
}

/// Lexes `src` into a lossless token stream. Total: any input produces
/// tokens whose concatenated text equals `src`.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let b = bytes[i];
        let kind = if b.is_ascii_whitespace() {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            TokKind::Whitespace
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            TokKind::BlockComment
        } else if (b == b'r' || b == b'b') && raw_string_end(bytes, i).is_some() {
            // Raw or raw-byte string. `raw_string_end` only fires when the
            // prefix really is followed by `#*"`; identifiers like `rows`
            // fall through to the ident arm below.
            let end = raw_string_end(bytes, i).unwrap_or(bytes.len());
            line += count_newlines(&bytes[i..end]);
            i = end;
            TokKind::RawStr
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
            let end = string_end(bytes, i + 1);
            line += count_newlines(&bytes[i..end]);
            i = end;
            TokKind::Str
        } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
            let (_, end) = char_or_lifetime(bytes, i + 1);
            line += count_newlines(&bytes[i..end]);
            i = end;
            TokKind::CharLit
        } else if b == b'r' && bytes.get(i + 1) == Some(&b'#') && bytes.get(i + 2).is_some_and(|&c| is_ident_start(c)) {
            // Raw identifier `r#ident` (raw strings were handled above, so
            // `r#"` never reaches here).
            i += 2;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if is_ident_start(b) {
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if b.is_ascii_digit() {
            // Integer/float with optional base prefix, `_` separators,
            // suffix, exponent digits. `0..5` must lex as number `0` then
            // two dots: only consume a `.` when a digit follows it.
            i += 1;
            while i < bytes.len() {
                let c = bytes[i];
                if is_ident_continue(c) {
                    i += 1;
                } else if c == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                    && !bytes[start..i].contains(&b'.')
                {
                    i += 1;
                } else {
                    break;
                }
            }
            TokKind::Number
        } else if b == b'"' {
            let end = string_end(bytes, i);
            line += count_newlines(&bytes[i..end]);
            i = end;
            TokKind::Str
        } else if b == b'\'' {
            let (kind, end) = char_or_lifetime(bytes, i);
            line += count_newlines(&bytes[i..end]);
            i = end;
            kind
        } else {
            // One punctuation byte — but never split a multi-byte UTF-8
            // char (only reachable inside doc text that escaped comment
            // forms; keep the slice boundary valid regardless).
            let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
            i += ch_len;
            TokKind::Punct
        };
        toks.push(Tok { kind, text: &src[start..i], line: start_line });
    }
    toks
}

fn count_newlines(bytes: &[u8]) -> u32 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "lossless round-trip");
    }

    #[test]
    fn raw_strings_with_hashes_and_backslashes() {
        roundtrip(r####"let a = r"x\"; let b = r#"say "hi" .unwrap()"# ;"####);
        let toks = kinds(r####"r#"say "hi""# + r"tail\""####);
        assert_eq!(toks[0], (TokKind::RawStr, r####"r#"say "hi""#"####));
        assert_eq!(toks[4], (TokKind::RawStr, r####"r"tail\""####));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let toks = kinds(r##"b"bytes" br#"raw"# b'x' b'\n'"##);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[2], (TokKind::RawStr, r##"br#"raw"#"##));
        assert_eq!(toks[4], (TokKind::CharLit, "b'x'"));
        assert_eq!(toks[6], (TokKind::CharLit, r"b'\n'"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(toks[2], (TokKind::BlockComment, "/* x /* y */ z */"));
        assert_eq!(toks[4], (TokKind::Ident, "b"));
        roundtrip("/* unterminated /* nested */ still open");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("<'a, 'static> '_ 'x' '\\'' '}'");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| *t).collect();
        assert_eq!(lifetimes, ["'a", "'static", "'_"]);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).map(|(_, t)| *t).collect();
        assert_eq!(chars, ["'x'", "'\\''", "'}'"]);
    }

    #[test]
    fn maximal_munch_identifiers_shadow_literal_prefixes() {
        // `foor"x"` is ident `foor` then a string, `rows` stays one ident,
        // `r#raw_ident` is a raw identifier.
        let toks = kinds("foor\"x\" rows r#fn");
        assert_eq!(toks[0], (TokKind::Ident, "foor"));
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[3], (TokKind::Ident, "rows"));
        assert_eq!(toks[5], (TokKind::Ident, "r#fn"));
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks: Vec<_> = kinds("0..5 1.5 0x1f 1_000 1e9")
            .into_iter()
            .filter(|(k, _)| *k != TokKind::Whitespace)
            .collect();
        assert_eq!(toks[0], (TokKind::Number, "0"));
        assert_eq!(toks[1], (TokKind::Punct, "."));
        assert_eq!(toks[2], (TokKind::Punct, "."));
        assert_eq!(toks[3], (TokKind::Number, "5"));
        assert_eq!(toks[4], (TokKind::Number, "1.5"));
        assert_eq!(toks[5], (TokKind::Number, "0x1f"));
        assert_eq!(toks[6], (TokKind::Number, "1_000"));
        assert_eq!(toks[7], (TokKind::Number, "1e9"));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"str\nacross\" c";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 4);
        let c = toks.iter().find(|t| t.is_ident("c")).expect("c");
        assert_eq!(c.line, 5);
    }

    #[test]
    fn total_on_garbage() {
        for src in ["'", "\"never closed", "r#\"open", "/*", "\u{1F600}é'", "b"] {
            roundtrip(src);
        }
    }
}
