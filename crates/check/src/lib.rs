//! `autoac-check` — the checking layer for the AutoAC stack.
//!
//! Four cooperating analyses share one diagnostics/report module
//! ([`diag`]):
//!
//! 1. **Tape verifier** ([`tape`]) — walks the autograd graph *before*
//!    `backward()` runs, validating per-op shape algebra, gradient
//!    accumulation shapes, topological order, and (against a parameter
//!    list) dead or frozen parameters.
//! 2. **Pool provenance sanitizer** — lives in
//!    `autoac_tensor::pool` (generation counters + canary words on pooled
//!    buffers); this crate re-exports its capture API and exercises it in
//!    integration tests.
//! 3. **Parallel-region race checker** — lives in
//!    `autoac_tensor::parallel::race` (declared row-range access sets per
//!    scoped region); re-exported and exercised here.
//! 4. **Source lint** ([`lint`]) — a hand-rolled scanner enforcing
//!    project invariants over the crates' source text, driven by the
//!    `autoac-lint` binary.
//!
//! All runtime analyses are gated on `AUTOAC_CHECK` (strictly parsed; see
//! `autoac_tensor::chk`) and cost nothing when disabled.

#![warn(missing_docs)]

pub mod analyze;
pub mod diag;
pub mod lint;
pub mod tape;

pub use diag::{Analysis, Diagnostic, Report};

// Runtime-sanitizer capture APIs, re-exported so downstream tests depend
// only on autoac-check for the whole checking surface.
pub use autoac_tensor::parallel::race::{capture_race_violations, RaceViolation};
pub use autoac_tensor::pool::{capture_pool_violations, PoolViolation, PoolViolationKind};
