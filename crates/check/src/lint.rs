//! Hand-rolled source lint enforcing project invariants over the crates'
//! source text (no rustc plumbing, no third-party parsers — a line-level
//! scanner with just enough state to track strings, comments, `#[cfg(test)]`
//! modules, and loop nesting).
//!
//! Rules:
//!
//! - **op-gradcheck-coverage** — every `pub fn` op in
//!   `crates/tensor/src/ops/` must be exercised by name in
//!   `crates/tensor/tests/gradcheck.rs`. New ops without a gradient test are
//!   exactly how silent autograd bugs ship.
//! - **raw-alloc-in-hotpath** — no `Matrix::from_vec` in hot-path modules
//!   (`crates/tensor/src/ops/`, `optim.rs`, `autograd.rs`, `sparse.rs`).
//!   `Matrix::zeros` is pool-backed in this codebase, so the constructor
//!   that actually escapes the recycler is `from_vec` (an adopted `Vec` is
//!   almost never bucket-shaped); hot paths must use
//!   `Matrix::from_slice`/`full`/`zeros` instead.
//! - **unwrap-in-lib** — no `.unwrap()` in library code outside tests
//!   (binaries under `src/bin/` are application code and exempt). Library
//!   failures must carry context via `expect` or propagate.
//! - **instant-in-kernel-loop** — no `Instant::now` inside a loop in
//!   `crates/tensor/src/` or `crates/obs/src/`: timing calls inside kernel
//!   inner loops perturb exactly the code being measured. The only
//!   sanctioned home for raw timing is the span machinery itself
//!   (`crates/obs/src/span.rs`), which is exempt.
//! - **eprintln-in-lib** — no bare `eprintln!` in library crates: stderr
//!   diagnostics must go through `autoac_obs::warn`, which prints the same
//!   line *and* counts/exports it. The obs crate itself
//!   (`crates/obs/src/`) is exempt — it is where the routing lives.
//! - **dispatch-parity-coverage** — every kernel variant registered in the
//!   `VARIANTS` list of `crates/tensor/src/dispatch.rs` must be exercised
//!   by name in the parity harness
//!   (`crates/tensor/tests/kernel_parity.rs`). A variant the harness never
//!   compares is a kernel whose bitwise-equality contract nothing checks.
//!
//! A finding can be silenced with a `lint:allow(<rule>)` marker (in a
//! comment) on the same or the preceding line; the allowlist is meant to be
//! rare and always accompanied by a justification.

use std::path::{Path, PathBuf};

use crate::diag::{Analysis, Diagnostic, Report};

/// Rule identifiers, shared between findings and `lint:allow(...)` markers.
const RULE_UNWRAP: &str = "unwrap-in-lib";
const RULE_RAW_ALLOC: &str = "raw-alloc-in-hotpath";
const RULE_INSTANT: &str = "instant-in-kernel-loop";
const RULE_GRADCHECK: &str = "op-gradcheck-coverage";
const RULE_EPRINTLN: &str = "eprintln-in-lib";
const RULE_DISPATCH_PARITY: &str = "dispatch-parity-coverage";

/// Marker spellings accepted in `lint:allow(...)` (underscores allowed so
/// the marker reads naturally in code comments).
fn allow_marker_matches(line: &str, rule: &str) -> bool {
    let Some(idx) = line.find("lint:allow(") else { return false };
    let rest = &line[idx + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else { return false };
    let named = rest[..end].trim().replace('_', "-");
    named == rule
        || match (named.as_str(), rule) {
            ("unwrap", RULE_UNWRAP) => true,
            ("raw-alloc", RULE_RAW_ALLOC) => true,
            ("instant", RULE_INSTANT) => true,
            ("gradcheck", RULE_GRADCHECK) => true,
            ("eprintln", RULE_EPRINTLN) => true,
            ("dispatch-parity", RULE_DISPATCH_PARITY) => true,
            _ => false,
        }
}

/// Strips string/char literals and comments from one line, tracking
/// multi-line block comments via `in_block_comment`. The goal is not full
/// lexical fidelity — only that braces, keywords, and rule patterns inside
/// literals or comments never reach the scanner.
fn strip_line(raw: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(raw.len());
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            // Raw (and raw-byte) string literal: `r"…"`, `r#"…"#`,
            // `br"…"` — backslashes are literal and `"` only closes when
            // followed by the matching number of `#`s, so the ordinary
            // string path below must never see one (an embedded `"` would
            // leak the literal's tail into scanned code, and a trailing
            // `\` would hide real code after the literal).
            b'r' | b'b' if raw_string_len(bytes, i).is_some() => {
                // Unterminated on this line (multi-line raw string):
                // conservatively consume the rest of the line.
                i += raw_string_len(bytes, i).expect("checked above");
            }
            b'"' => {
                // Skip the string literal (escapes handled; raw strings in
                // this codebase don't contain braces or rule patterns).
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            // Char literal like '}' or '\n' — skip it so the brace inside
            // doesn't desync the depth counter. A lone lifetime tick ('a)
            // has no closing quote within 3 bytes and falls through.
            b'\'' if i + 2 < bytes.len()
                && (bytes[i + 2] == b'\''
                    || (bytes[i + 1] == b'\\' && i + 3 < bytes.len() && bytes[i + 3] == b'\'')) =>
            {
                i += if bytes[i + 1] == b'\\' { 4 } else { 3 };
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// If `bytes[i..]` starts a raw (or raw-byte) string literal — `r"…"`,
/// `r#"…"#`, `br"…"`, … — returns the byte length to consume: the whole
/// literal when it closes on this line, otherwise everything to the end of
/// the line. `None` when `i` does not start a raw string (including when
/// the `r` is the tail of a longer identifier like `var`).
fn raw_string_len(bytes: &[u8], i: usize) -> Option<usize> {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None; // `foor"…"` is ident `foor` then an ordinary string
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` `#`s.
    while j < bytes.len() {
        if bytes[j] == b'"' && bytes[j + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes {
            return Some(j + 1 + hashes - i);
        }
        j += 1;
    }
    Some(bytes.len() - i) // unterminated on this line
}

/// True when `needle` occurs in `text` delimited by non-identifier chars.
fn contains_word(text: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// `pub fn name` at the start of a (stripped, trimmed) line, if any.
/// `pub(crate) fn` is internal API and deliberately not matched.
fn pub_fn_name(code: &str) -> Option<&str> {
    let rest = code.trim_start().strip_prefix("pub fn ")?;
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Per-file scan state.
struct Scanner<'a> {
    path_display: String,
    is_hotpath: bool,
    is_timing_scope: bool,
    is_obs_crate: bool,
    is_ops_file: bool,
    gradcheck_text: &'a str,
    /// Brace depth in stripped code.
    depth: usize,
    /// Depth *inside* an open `#[cfg(test)] mod`, when active.
    test_region: Option<usize>,
    pending_cfg_test: bool,
    pending_test_mod: bool,
    /// Depths at which loop bodies opened.
    loop_depths: Vec<usize>,
    pending_loop: bool,
    in_block_comment: bool,
    prev_raw: String,
    report: Report,
}

impl Scanner<'_> {
    fn allowed(&self, raw: &str, rule: &str) -> bool {
        allow_marker_matches(raw, rule) || allow_marker_matches(&self.prev_raw, rule)
    }

    fn diag(&mut self, rule: &'static str, line_no: usize, message: String) {
        self.report.push(Diagnostic {
            analysis: Analysis::Lint,
            rule,
            message,
            location: format!("{}:{}", self.path_display, line_no),
        });
    }

    fn scan_line(&mut self, line_no: usize, raw: &str) {
        let code = strip_line(raw, &mut self.in_block_comment);
        let in_tests = self.test_region.is_some();

        // Rule checks run against stripped code, outside test modules.
        if !in_tests {
            if code.contains(".unwrap()") && !self.allowed(raw, RULE_UNWRAP) {
                self.diag(
                    RULE_UNWRAP,
                    line_no,
                    "`.unwrap()` in library code; use `expect` with context or propagate".into(),
                );
            }
            if self.is_hotpath
                && code.contains("Matrix::from_vec(")
                && !self.allowed(raw, RULE_RAW_ALLOC)
            {
                self.diag(
                    RULE_RAW_ALLOC,
                    line_no,
                    "raw `Matrix::from_vec` allocation in a pooled hot path; \
                     use `Matrix::from_slice`/`full`/`zeros` (pool-backed) instead"
                        .into(),
                );
            }
            if self.is_timing_scope
                && !self.loop_depths.is_empty()
                && code.contains("Instant::now")
                && !self.allowed(raw, RULE_INSTANT)
            {
                self.diag(
                    RULE_INSTANT,
                    line_no,
                    "`Instant::now` inside a kernel loop perturbs the code being measured; \
                     hoist timing out of the loop (raw timing is sanctioned only inside \
                     the obs span internals, crates/obs/src/span.rs)"
                        .into(),
                );
            }
            if !self.is_obs_crate
                && code.contains("eprintln!")
                && !self.allowed(raw, RULE_EPRINTLN)
            {
                self.diag(
                    RULE_EPRINTLN,
                    line_no,
                    "bare `eprintln!` in library code; route it through `autoac_obs::warn` \
                     so the message is also counted and exported"
                        .into(),
                );
            }
            if self.is_ops_file {
                if let Some(name) = pub_fn_name(&code) {
                    if !contains_word(self.gradcheck_text, name)
                        && !self.allowed(raw, RULE_GRADCHECK)
                    {
                        self.diag(
                            RULE_GRADCHECK,
                            line_no,
                            format!(
                                "op `{name}` has no gradcheck coverage \
                                 (crates/tensor/tests/gradcheck.rs never mentions it)"
                            ),
                        );
                    }
                }
            }
        }

        // Structure tracking (comments/strings already stripped).
        if raw.contains("#[cfg(test)]") {
            self.pending_cfg_test = true;
        }
        let trimmed = code.trim_start();
        if self.pending_cfg_test
            && (trimmed.starts_with("mod ") || trimmed.starts_with("pub mod "))
        {
            self.pending_test_mod = true;
            self.pending_cfg_test = false;
        } else if self.pending_cfg_test && trimmed.starts_with("fn ") {
            // `#[cfg(test)] fn helper` — not a module; drop the flag.
            self.pending_cfg_test = false;
        }
        if contains_word(&code, "for") || contains_word(&code, "while") || contains_word(&code, "loop")
        {
            self.pending_loop = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    self.depth += 1;
                    if self.pending_test_mod {
                        self.test_region.get_or_insert(self.depth);
                        self.pending_test_mod = false;
                    }
                    if self.pending_loop {
                        self.loop_depths.push(self.depth);
                        self.pending_loop = false;
                    }
                }
                '}' => {
                    if self.loop_depths.last() == Some(&self.depth) {
                        self.loop_depths.pop();
                    }
                    if self.test_region == Some(self.depth) {
                        self.test_region = None;
                    }
                    self.depth = self.depth.saturating_sub(1);
                }
                ';' => self.pending_loop = false, // `for` in a doc path etc.
                _ => {}
            }
        }
        self.prev_raw = raw.to_string();
    }
}

/// True for modules where every per-iteration allocation must recycle.
fn is_hotpath(rel: &str) -> bool {
    rel.contains("crates/tensor/src/ops/")
        || rel.ends_with("crates/tensor/src/optim.rs")
        || rel.ends_with("crates/tensor/src/autograd.rs")
        || rel.ends_with("crates/tensor/src/sparse.rs")
}

/// Scans one file's text and returns its findings. `rel` is the
/// repo-relative path used for rule selection and locations.
pub fn scan_source(rel: &str, text: &str, gradcheck_text: &str) -> Report {
    let mut scanner = Scanner {
        path_display: rel.to_string(),
        is_hotpath: is_hotpath(rel),
        is_timing_scope: rel.contains("crates/tensor/src/")
            || (rel.contains("crates/obs/src/") && !rel.ends_with("span.rs")),
        is_obs_crate: rel.contains("crates/obs/src/"),
        is_ops_file: rel.contains("crates/tensor/src/ops/") && !rel.ends_with("mod.rs"),
        gradcheck_text,
        depth: 0,
        test_region: None,
        pending_cfg_test: false,
        pending_test_mod: false,
        loop_depths: Vec::new(),
        pending_loop: false,
        in_block_comment: false,
        prev_raw: String::new(),
        report: Report::new(),
    };
    for (i, raw) in text.lines().enumerate() {
        scanner.scan_line(i + 1, raw);
    }
    scanner.report.inspected = 1;
    scanner.report
}

/// The dispatch-parity-coverage rule over in-memory texts: every string
/// in `dispatch_text`'s `VARIANTS` list must occur (word-delimited) in
/// `parity_text`. Split out from [`check_dispatch_parity`] for direct
/// unit testing.
pub fn scan_dispatch_parity(dispatch_text: &str, parity_text: &str) -> Report {
    const DISPATCH_REL: &str = "crates/tensor/src/dispatch.rs";
    let mut report = Report::new();
    let Some(start) = dispatch_text.find("VARIANTS") else { return report };
    // Skip past the `=` so the `[` in the `&[&str]` type annotation
    // doesn't masquerade as the list opener.
    let Some(eq) = dispatch_text[start..].find('=') else { return report };
    let Some(open) = dispatch_text[start + eq..].find('[') else { return report };
    let list_start = start + eq + open;
    let Some(close) = dispatch_text[list_start..].find(']') else { return report };
    let list = &dispatch_text[list_start..list_start + close];
    let mut offset = 0;
    while let Some(q0) = list[offset..].find('"') {
        let name_start = offset + q0 + 1;
        let Some(q1) = list[name_start..].find('"') else { break };
        let name = &list[name_start..name_start + q1];
        offset = name_start + q1 + 1;
        if name.is_empty() || contains_word(parity_text, name) {
            continue;
        }
        let abs = list_start + name_start;
        let line_no = dispatch_text[..abs].matches('\n').count() + 1;
        let raw_line = dispatch_text.lines().nth(line_no - 1).unwrap_or_default();
        if allow_marker_matches(raw_line, RULE_DISPATCH_PARITY) {
            continue;
        }
        report.push(Diagnostic {
            analysis: Analysis::Lint,
            rule: RULE_DISPATCH_PARITY,
            message: format!(
                "kernel variant `{name}` is registered in VARIANTS but never exercised \
                 in crates/tensor/tests/kernel_parity.rs"
            ),
            location: format!("{DISPATCH_REL}:{line_no}"),
        });
    }
    report
}

/// File-reading wrapper for [`scan_dispatch_parity`]: inert when the tree
/// has no dispatch layer; a missing or empty parity harness flags every
/// registered variant.
fn check_dispatch_parity(root: &Path) -> Report {
    let Ok(dispatch_text) = std::fs::read_to_string(root.join("crates/tensor/src/dispatch.rs"))
    else {
        return Report::new();
    };
    let parity_text = std::fs::read_to_string(root.join("crates/tensor/tests/kernel_parity.rs"))
        .unwrap_or_default();
    scan_dispatch_parity(&dispatch_text, &parity_text)
}

/// Recursively collects `.rs` files under `dir`, skipping `src/bin/`
/// (application code) — the lint targets library sources.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort(); // deterministic finding order
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every library source under `root/crates/*/src/` against all rules.
/// `root` is a repository layout root — the fixture tests point this at a
/// directory mirroring the layout with seeded violations.
pub fn lint_root(root: &Path) -> Report {
    let mut report = Report::new();
    let gradcheck_text = std::fs::read_to_string(root.join("crates/tensor/tests/gradcheck.rs"))
        .unwrap_or_default();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        report.push(Diagnostic {
            analysis: Analysis::Lint,
            rule: "bad-root",
            message: format!("{} has no crates/ directory", root.display()),
            location: String::new(),
        });
        return report;
    };
    let mut crate_dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files);
        for file in files {
            let Ok(text) = std::fs::read_to_string(&file) else { continue };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.merge(scan_source(&rel, &text, &gradcheck_text));
        }
    }
    report.merge(check_dispatch_parity(root));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_literals() {
        let mut blk = false;
        assert_eq!(strip_line("let x = 1; // .unwrap()", &mut blk), "let x = 1; ");
        assert_eq!(strip_line("let s = \"} .unwrap() {\";", &mut blk), "let s = ;");
        assert_eq!(strip_line("let c = '}';", &mut blk), "let c = ;");
        assert_eq!(strip_line("a /* x", &mut blk), "a ");
        assert!(blk);
        assert_eq!(strip_line("y */ b", &mut blk), " b");
        assert!(!blk);
    }

    #[test]
    fn rule_patterns_inside_string_literals_never_fire() {
        // Pinned regression: a rule pattern inside ANY string literal —
        // ordinary, raw, hash-delimited raw, or raw-byte — must not reach
        // the rule scanner. The pre-fix scanner treated `\` inside raw
        // strings as an escape and `"` inside `r#"…"#` as a terminator,
        // so patterns leaked out (false positives) or real code after a
        // backslash-final raw string was swallowed (false negatives).
        // This test is written against the public `scan_source` entry so
        // it keeps guarding the behavior across scanner rewrites.
        for text in [
            "fn f() -> String { \"x.unwrap()\".into() }\n",
            "fn f() -> String { r\"x.unwrap()\".into() }\n",
            "fn f() -> &'static str { r#\"say \"hi\" then .unwrap()\"# }\n",
            "fn f() -> &'static [u8] { br#\"eprintln!(\"boom\") and .unwrap()\"# }\n",
        ] {
            let report = scan_source("crates/x/src/lib.rs", text, "");
            assert!(report.is_clean(), "false positive on {text:?}:\n{}", report.render());
        }
        // A backslash-final raw string must not desync the scanner into
        // hiding the real violation on the same line.
        let text = "fn f(&self) { let _p = r\"C:\\\"; self.0.unwrap(); }\n";
        let report = scan_source("crates/x/src/lib.rs", text, "");
        assert_eq!(report.diagnostics.len(), 1, "hidden violation:\n{}", report.render());
        assert_eq!(report.diagnostics[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_but_tests_and_allows_are_not() {
        let text = "\
impl X {
    fn f(&self) {
        self.0.unwrap();
    }
    fn g(&self) {
        self.0.unwrap(); // lint:allow(unwrap) — infallible by construction
    }
}

#[cfg(test)]
mod tests {
    fn t() {
        x.unwrap();
    }
}
";
        let report = scan_source("crates/x/src/lib.rs", text, "");
        let findings: Vec<_> = report.diagnostics.iter().map(|d| &d.location).collect();
        assert_eq!(findings.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(findings[0], "crates/x/src/lib.rs:3");
    }

    #[test]
    fn raw_alloc_only_flagged_in_hotpath_modules() {
        let text = "fn f() { let m = Matrix::from_vec(1, 1, vec![0.0]); }\n";
        assert_eq!(scan_source("crates/tensor/src/ops/arith.rs", text, "").diagnostics.len(), 1);
        assert_eq!(scan_source("crates/data/src/loader.rs", text, "").diagnostics.len(), 0);
    }

    #[test]
    fn instant_flagged_only_inside_loops_of_kernel_crate() {
        let inside = "fn f() {\n    for i in 0..n {\n        let t = Instant::now();\n    }\n}\n";
        let outside = "fn f() {\n    let t = Instant::now();\n    for i in 0..n {}\n}\n";
        assert_eq!(scan_source("crates/tensor/src/matrix.rs", inside, "").diagnostics.len(), 1);
        assert_eq!(scan_source("crates/tensor/src/matrix.rs", outside, "").diagnostics.len(), 0);
        assert_eq!(scan_source("crates/core/src/trainer.rs", inside, "").diagnostics.len(), 0);
    }

    #[test]
    fn instant_rule_covers_obs_except_span_internals() {
        let inside = "fn f() {\n    for i in 0..n {\n        let t = Instant::now();\n    }\n}\n";
        assert_eq!(scan_source("crates/obs/src/hist.rs", inside, "").diagnostics.len(), 1);
        assert_eq!(scan_source("crates/obs/src/span.rs", inside, "").diagnostics.len(), 0);
    }

    #[test]
    fn eprintln_flagged_in_lib_but_not_in_obs_tests_or_allows() {
        let text = "\
fn f() {
    eprintln!(\"boom\");
    eprintln!(\"fine\"); // lint:allow(eprintln) — CLI-facing usage text
}

#[cfg(test)]
mod tests {
    fn t() {
        eprintln!(\"test-only\");
    }
}
";
        let report = scan_source("crates/core/src/search.rs", text, "");
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].rule, RULE_EPRINTLN);
        assert_eq!(report.diagnostics[0].location, "crates/core/src/search.rs:2");
        // The obs crate is the router and therefore exempt.
        assert_eq!(scan_source("crates/obs/src/metrics.rs", text, "").diagnostics.len(), 0);
    }

    #[test]
    fn dispatch_parity_flags_uncovered_variants_with_word_boundaries() {
        let dispatch = "\
/// registry
pub const VARIANTS: &[&str] = &[
    \"foo_scalar\",
    \"foo_blocked\",
];
";
        // `foo_scalar_x` is not word-delimited coverage of `foo_scalar`.
        let report = scan_dispatch_parity(dispatch, "run(foo_scalar_x); check(\"foo_blocked\");");
        assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
        assert_eq!(report.diagnostics[0].rule, RULE_DISPATCH_PARITY);
        assert_eq!(report.diagnostics[0].location, "crates/tensor/src/dispatch.rs:3");
        // Covered both ways -> clean; no VARIANTS list -> inert.
        assert!(scan_dispatch_parity(dispatch, "foo_scalar foo_blocked").is_clean());
        assert!(scan_dispatch_parity("pub fn f() {}", "").is_clean());
    }

    #[test]
    fn gradcheck_coverage_uses_word_boundaries() {
        let ops = "impl T {\n    pub fn sum(&self) {}\n    pub fn sum_rows(&self) {}\n}\n";
        // A call to `sum_rows` does NOT count as coverage for `sum`.
        let report = scan_source("crates/tensor/src/ops/reduce.rs", ops, "let s = t.sum_rows();");
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert!(report.diagnostics[0].message.contains("`sum`"));
    }
}
