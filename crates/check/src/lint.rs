//! Source lint enforcing project invariants over the crates' library
//! sources. Since the `analyze` layer landed, every rule runs on the
//! token stream ([`crate::analyze::lexer`]) and the brace-matched item
//! tree ([`crate::analyze::source`]) — string literals, comments, and
//! char literals can never leak patterns into the rules or desync the
//! structure tracking, which was the documented limit of the old
//! line-stripping scanner.
//!
//! Rules:
//!
//! - **op-gradcheck-coverage** — every `pub fn` op in
//!   `crates/tensor/src/ops/` must be exercised by name in
//!   `crates/tensor/tests/gradcheck.rs`. New ops without a gradient test are
//!   exactly how silent autograd bugs ship.
//! - **raw-alloc-in-hotpath** — no `Matrix::from_vec` in hot-path modules
//!   (`crates/tensor/src/ops/`, `optim.rs`, `autograd.rs`, `sparse.rs`).
//!   `Matrix::zeros` is pool-backed in this codebase, so the constructor
//!   that actually escapes the recycler is `from_vec` (an adopted `Vec` is
//!   almost never bucket-shaped); hot paths must use
//!   `Matrix::from_slice`/`full`/`zeros` instead.
//! - **unwrap-in-lib** — no `.unwrap()` in library code outside tests
//!   (binaries under `src/bin/` are application code and exempt). Library
//!   failures must carry context via `expect` or propagate.
//! - **instant-in-kernel-loop** — no `Instant::now` inside a loop in
//!   `crates/tensor/src/` or `crates/obs/src/`: timing calls inside kernel
//!   inner loops perturb exactly the code being measured. The only
//!   sanctioned home for raw timing is the span machinery itself
//!   (`crates/obs/src/span.rs`), which is exempt.
//! - **eprintln-in-lib** — no bare `eprintln!` in library crates: stderr
//!   diagnostics must go through `autoac_obs::warn`, which prints the same
//!   line *and* counts/exports it. The obs crate itself
//!   (`crates/obs/src/`) is exempt — it is where the routing lives.
//! - **dispatch-parity-coverage** — every kernel variant registered in the
//!   `VARIANTS` list of `crates/tensor/src/dispatch.rs` must be exercised
//!   by name in the parity harness
//!   (`crates/tensor/tests/kernel_parity.rs`). A variant the harness never
//!   compares is a kernel whose bitwise-equality contract nothing checks.
//!
//! A finding can be silenced with a `lint:allow(<rule>)` marker (in a
//! comment) on the same or the preceding line; the allowlist is meant to be
//! rare and always accompanied by a justification.

use std::path::Path;

use crate::analyze::lexer::TokKind;
use crate::analyze::source::{FileKind, SourceFile};
use crate::analyze::workspace::Workspace;
use crate::diag::{Analysis, Diagnostic, Report};

/// Rule identifiers, shared between findings and `lint:allow(...)` markers.
const RULE_UNWRAP: &str = "unwrap-in-lib";
const RULE_RAW_ALLOC: &str = "raw-alloc-in-hotpath";
const RULE_INSTANT: &str = "instant-in-kernel-loop";
const RULE_GRADCHECK: &str = "op-gradcheck-coverage";
const RULE_EPRINTLN: &str = "eprintln-in-lib";
const RULE_DISPATCH_PARITY: &str = "dispatch-parity-coverage";

/// True when `needle` occurs in `text` delimited by non-identifier chars.
/// Used for coverage checks against the gradcheck/parity harness *text*
/// (a mention in a string or comment counts as coverage, by design — the
/// harnesses name kernels inside `check("…")` calls).
fn contains_word(text: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// True for modules where every per-iteration allocation must recycle.
fn is_hotpath(rel: &str) -> bool {
    rel.contains("crates/tensor/src/ops/")
        || rel.ends_with("crates/tensor/src/optim.rs")
        || rel.ends_with("crates/tensor/src/autograd.rs")
        || rel.ends_with("crates/tensor/src/sparse.rs")
}

/// Crate dir name from a repo-relative path (`crates/x/src/lib.rs` → `x`).
fn krate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("autoac")
}

/// Scans one file's text and returns its findings. `rel` is the
/// repo-relative path used for rule selection and locations.
pub fn scan_source(rel: &str, text: &str, gradcheck_text: &str) -> Report {
    let file = SourceFile::parse(rel, krate_of(rel), FileKind::Lib, text.to_string());
    scan_file(&file, gradcheck_text)
}

/// Token-stream rule pass over one parsed library file.
pub(crate) fn scan_file(file: &SourceFile, gradcheck_text: &str) -> Report {
    let rel = &file.rel;
    let hotpath = is_hotpath(rel);
    let timing_scope = rel.contains("crates/tensor/src/")
        || (rel.contains("crates/obs/src/") && !rel.ends_with("span.rs"));
    let obs_crate = rel.contains("crates/obs/src/");
    let ops_file = rel.contains("crates/tensor/src/ops/") && !rel.ends_with("mod.rs");

    let mut report = Report::new();
    let mut diag = |rule: &'static str, line: u32, message: String| {
        report.push(Diagnostic {
            analysis: Analysis::Lint,
            rule,
            message,
            location: format!("{rel}:{line}"),
        });
    };

    for i in 0..file.toks.len() {
        if file.toks[i].kind != TokKind::Ident || file.in_test_region(i) {
            continue;
        }
        let line = file.toks[i].line;
        let allowed = |rule: &str| file.allow_for("lint", rule, line).is_some();
        match file.tok_text(i) {
            "unwrap" => {
                let method_call = file.prev_code(i).is_some_and(|p| file.is_punct(p, '.'))
                    && file.next_code(i).is_some_and(|n| file.is_punct(n, '('));
                if method_call && !allowed(RULE_UNWRAP) {
                    diag(
                        RULE_UNWRAP,
                        line,
                        "`.unwrap()` in library code; use `expect` with context or propagate"
                            .into(),
                    );
                }
            }
            "Matrix" if hotpath => {
                if qualified_by(file, i, "from_vec")
                    && !allowed(RULE_RAW_ALLOC)
                {
                    diag(
                        RULE_RAW_ALLOC,
                        line,
                        "raw `Matrix::from_vec` allocation in a pooled hot path; \
                         use `Matrix::from_slice`/`full`/`zeros` (pool-backed) instead"
                            .into(),
                    );
                }
            }
            "Instant" if timing_scope => {
                if qualified_by(file, i, "now") && file.in_loop(i) && !allowed(RULE_INSTANT) {
                    diag(
                        RULE_INSTANT,
                        line,
                        "`Instant::now` inside a kernel loop perturbs the code being measured; \
                         hoist timing out of the loop (raw timing is sanctioned only inside \
                         the obs span internals, crates/obs/src/span.rs)"
                            .into(),
                    );
                }
            }
            "eprintln" if !obs_crate => {
                if file.next_code(i).is_some_and(|n| file.is_punct(n, '!'))
                    && !allowed(RULE_EPRINTLN)
                {
                    diag(
                        RULE_EPRINTLN,
                        line,
                        "bare `eprintln!` in library code; route it through `autoac_obs::warn` \
                         so the message is also counted and exported"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }

    if ops_file {
        for def in &file.fns {
            if !def.is_pub || def.in_test || contains_word(gradcheck_text, &def.name) {
                continue;
            }
            if file.allow_for("lint", RULE_GRADCHECK, def.line).is_some() {
                continue;
            }
            diag(
                RULE_GRADCHECK,
                def.line,
                format!(
                    "op `{}` has no gradcheck coverage \
                     (crates/tensor/tests/gradcheck.rs never mentions it)",
                    def.name
                ),
            );
        }
    }

    report.inspected = 1;
    report
}

/// True when ident token `i` starts the path `Name::member(` for the given
/// member (the `(` is not required — `Instant::now` may be passed as a
/// fn pointer, and the old scanner matched it bare as well).
fn qualified_by(file: &SourceFile, i: usize, member: &str) -> bool {
    let Some(c1) = file.next_code(i) else { return false };
    if !file.is_punct(c1, ':') {
        return false;
    }
    let Some(c2) = file.next_code(c1) else { return false };
    if !file.is_punct(c2, ':') {
        return false;
    }
    file.next_code(c2).is_some_and(|m| file.is_ident(m, member))
}

/// The dispatch-parity-coverage rule over in-memory texts: every string
/// in `dispatch_text`'s `VARIANTS` list must occur (word-delimited) in
/// `parity_text`. Split out from the root-level check for direct unit
/// testing.
pub fn scan_dispatch_parity(dispatch_text: &str, parity_text: &str) -> Report {
    const DISPATCH_REL: &str = "crates/tensor/src/dispatch.rs";
    let file = SourceFile::parse(
        DISPATCH_REL,
        "tensor",
        FileKind::Lib,
        dispatch_text.to_string(),
    );
    let mut report = Report::new();
    // Locate `VARIANTS … = … [ "name", … ]` on the token stream: the `[`
    // after the `=` opens the list (the one in the `&[&str]` type
    // annotation sits before the `=` and is skipped).
    let Some(variants) = (0..file.toks.len()).find(|&i| file.is_ident(i, "VARIANTS")) else {
        return report;
    };
    let Some(eq) = (variants..file.toks.len()).find(|&i| file.is_punct(i, '=')) else {
        return report;
    };
    let Some(open) = (eq..file.toks.len()).find(|&i| file.is_punct(i, '[')) else {
        return report;
    };
    for i in open..file.toks.len() {
        if file.is_punct(i, ']') {
            break;
        }
        if file.toks[i].kind != TokKind::Str {
            continue;
        }
        let name = file.tok_text(i).trim_matches('"');
        if name.is_empty() || contains_word(parity_text, name) {
            continue;
        }
        let line = file.toks[i].line;
        if file.allow_for("lint", RULE_DISPATCH_PARITY, line).is_some() {
            continue;
        }
        report.push(Diagnostic {
            analysis: Analysis::Lint,
            rule: RULE_DISPATCH_PARITY,
            message: format!(
                "kernel variant `{name}` is registered in VARIANTS but never exercised \
                 in crates/tensor/tests/kernel_parity.rs"
            ),
            location: format!("{DISPATCH_REL}:{line}"),
        });
    }
    report
}

/// Runs every lint rule over a loaded workspace's library sources under
/// `crates/` (bins, tests, and benches are exempt, as is the root
/// package). `root` is only used to read the coverage harnesses when the
/// workspace didn't load them (missing files degrade to empty coverage).
pub fn lint_workspace(ws: &Workspace, root: &Path) -> Report {
    let text_of = |rel: &str| -> Option<&str> {
        ws.files.iter().find(|f| f.rel == rel).map(|f| f.text.as_str())
    };
    let gradcheck_owned;
    let gradcheck_text = match text_of("crates/tensor/tests/gradcheck.rs") {
        Some(t) => t,
        None => {
            gradcheck_owned = std::fs::read_to_string(root.join("crates/tensor/tests/gradcheck.rs"))
                .unwrap_or_default();
            &gradcheck_owned
        }
    };

    let mut report = Report::new();
    for file in &ws.files {
        if file.file_kind != FileKind::Lib || !file.rel.starts_with("crates/") {
            continue;
        }
        report.merge(scan_file(file, gradcheck_text));
    }
    if let Some(dispatch_text) = text_of("crates/tensor/src/dispatch.rs") {
        let parity_text = text_of("crates/tensor/tests/kernel_parity.rs").unwrap_or_default();
        report.merge(scan_dispatch_parity(dispatch_text, parity_text));
    }
    report
}

/// Lints every library source under `root/crates/*/src/` against all rules.
/// `root` is a repository layout root — the fixture tests point this at a
/// directory mirroring the layout with seeded violations.
pub fn lint_root(root: &Path) -> Report {
    if !root.join("crates").is_dir() {
        let mut report = Report::new();
        report.push(Diagnostic {
            analysis: Analysis::Lint,
            rule: "bad-root",
            message: format!("{} has no crates/ directory", root.display()),
            location: String::new(),
        });
        return report;
    }
    match Workspace::load(root) {
        Ok(ws) => lint_workspace(&ws, root),
        Err(e) => {
            let mut report = Report::new();
            report.push(Diagnostic {
                analysis: Analysis::Lint,
                rule: "bad-root",
                message: format!("failed to load {}: {e}", root.display()),
                location: String::new(),
            });
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_patterns_inside_string_literals_never_fire() {
        // Pinned regression: a rule pattern inside ANY string literal —
        // ordinary, raw, hash-delimited raw, or raw-byte — must not reach
        // the rule scanner. The pre-fix scanner treated `\` inside raw
        // strings as an escape and `"` inside `r#"…"#` as a terminator,
        // so patterns leaked out (false positives) or real code after a
        // backslash-final raw string was swallowed (false negatives).
        // This test is written against the public `scan_source` entry so
        // it keeps guarding the behavior across scanner rewrites.
        for text in [
            "fn f() -> String { \"x.unwrap()\".into() }\n",
            "fn f() -> String { r\"x.unwrap()\".into() }\n",
            "fn f() -> &'static str { r#\"say \"hi\" then .unwrap()\"# }\n",
            "fn f() -> &'static [u8] { br#\"eprintln!(\"boom\") and .unwrap()\"# }\n",
        ] {
            let report = scan_source("crates/x/src/lib.rs", text, "");
            assert!(report.is_clean(), "false positive on {text:?}:\n{}", report.render());
        }
        // A backslash-final raw string must not desync the scanner into
        // hiding the real violation on the same line.
        let text = "fn f(&self) { let _p = r\"C:\\\"; self.0.unwrap(); }\n";
        let report = scan_source("crates/x/src/lib.rs", text, "");
        assert_eq!(report.diagnostics.len(), 1, "hidden violation:\n{}", report.render());
        assert_eq!(report.diagnostics[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_but_tests_and_allows_are_not() {
        let text = "\
impl X {
    fn f(&self) {
        self.0.unwrap();
    }
    fn g(&self) {
        self.0.unwrap(); // lint:allow(unwrap) — infallible by construction
    }
}

#[cfg(test)]
mod tests {
    fn t() {
        x.unwrap();
    }
}
";
        let report = scan_source("crates/x/src/lib.rs", text, "");
        let findings: Vec<_> = report.diagnostics.iter().map(|d| &d.location).collect();
        assert_eq!(findings.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(findings[0], "crates/x/src/lib.rs:3");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        // The old scanner matched the literal `.unwrap()`; the token rule
        // must be exactly as precise about neighboring method names.
        let text = "fn f() { x.lock().unwrap_or_else(|p| p.into_inner()); }\n";
        assert!(scan_source("crates/x/src/lib.rs", text, "").is_clean());
    }

    #[test]
    fn raw_alloc_only_flagged_in_hotpath_modules() {
        let text = "fn f() { let m = Matrix::from_vec(1, 1, vec![0.0]); }\n";
        assert_eq!(scan_source("crates/tensor/src/ops/arith.rs", text, "").diagnostics.len(), 1);
        assert_eq!(scan_source("crates/data/src/loader.rs", text, "").diagnostics.len(), 0);
    }

    #[test]
    fn instant_flagged_only_inside_loops_of_kernel_crate() {
        let inside = "fn f() {\n    for i in 0..n {\n        let t = Instant::now();\n    }\n}\n";
        let outside = "fn f() {\n    let t = Instant::now();\n    for i in 0..n {}\n}\n";
        assert_eq!(scan_source("crates/tensor/src/matrix.rs", inside, "").diagnostics.len(), 1);
        assert_eq!(scan_source("crates/tensor/src/matrix.rs", outside, "").diagnostics.len(), 0);
        assert_eq!(scan_source("crates/core/src/trainer.rs", inside, "").diagnostics.len(), 0);
    }

    #[test]
    fn impl_trait_for_type_is_not_a_loop() {
        // `impl Iterator for Chunks { … }` — the old line scanner saw the
        // word `for` and treated the impl body as a loop, so an
        // `Instant::now` in a trait method was misflagged.
        let text = "\
impl Iterator for Chunks {
    fn next(&mut self) -> Option<()> {
        let t = Instant::now();
        None
    }
}
";
        assert_eq!(
            scan_source("crates/tensor/src/matrix.rs", text, "").diagnostics.len(),
            0,
            "impl-for is not a loop"
        );
    }

    #[test]
    fn instant_rule_covers_obs_except_span_internals() {
        let inside = "fn f() {\n    for i in 0..n {\n        let t = Instant::now();\n    }\n}\n";
        assert_eq!(scan_source("crates/obs/src/hist.rs", inside, "").diagnostics.len(), 1);
        assert_eq!(scan_source("crates/obs/src/span.rs", inside, "").diagnostics.len(), 0);
    }

    #[test]
    fn eprintln_flagged_in_lib_but_not_in_obs_tests_or_allows() {
        let text = "\
fn f() {
    eprintln!(\"boom\");
    eprintln!(\"fine\"); // lint:allow(eprintln) — CLI-facing usage text
}

#[cfg(test)]
mod tests {
    fn t() {
        eprintln!(\"test-only\");
    }
}
";
        let report = scan_source("crates/core/src/search.rs", text, "");
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].rule, RULE_EPRINTLN);
        assert_eq!(report.diagnostics[0].location, "crates/core/src/search.rs:2");
        // The obs crate is the router and therefore exempt.
        assert_eq!(scan_source("crates/obs/src/metrics.rs", text, "").diagnostics.len(), 0);
    }

    #[test]
    fn dispatch_parity_flags_uncovered_variants_with_word_boundaries() {
        let dispatch = "\
/// registry
pub const VARIANTS: &[&str] = &[
    \"foo_scalar\",
    \"foo_blocked\",
];
";
        // `foo_scalar_x` is not word-delimited coverage of `foo_scalar`.
        let report = scan_dispatch_parity(dispatch, "run(foo_scalar_x); check(\"foo_blocked\");");
        assert_eq!(report.diagnostics.len(), 1, "{}", report.render());
        assert_eq!(report.diagnostics[0].rule, RULE_DISPATCH_PARITY);
        assert_eq!(report.diagnostics[0].location, "crates/tensor/src/dispatch.rs:3");
        // Covered both ways -> clean; no VARIANTS list -> inert.
        assert!(scan_dispatch_parity(dispatch, "foo_scalar foo_blocked").is_clean());
        assert!(scan_dispatch_parity("pub fn f() {}", "").is_clean());
    }

    #[test]
    fn gradcheck_coverage_uses_word_boundaries() {
        let ops = "impl T {\n    pub fn sum(&self) {}\n    pub fn sum_rows(&self) {}\n}\n";
        // A call to `sum_rows` does NOT count as coverage for `sum`.
        let report = scan_source("crates/tensor/src/ops/reduce.rs", ops, "let s = t.sum_rows();");
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert!(report.diagnostics[0].message.contains("`sum`"));
    }
}
