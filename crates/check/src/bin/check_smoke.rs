//! `check_smoke` — one-shot demonstration that every analysis in
//! `autoac-check` actually catches its class of bug.
//!
//! Runs four seeded violations in capture mode (so nothing panics), plus
//! the source lint over the seeded fixture tree, and prints a one-line
//! JSON summary. Exits 1 if any analysis failed to catch its seeded bug —
//! this is the "the smoke detector beeps when you hold a match under it"
//! test wired into `scripts/verify.sh`.

use std::path::PathBuf;
use std::process::ExitCode;

use autoac_check::tape;
use autoac_tensor::parallel::race;
use autoac_tensor::{chk, pool, Matrix, Tensor};

/// Builds a small graph, corrupts an intermediate's shape behind the
/// tape's back, and counts verifier findings.
fn tape_demo() -> usize {
    chk::with_check(true, || {
        let x = Tensor::new(Matrix::ones(3, 4), true);
        let w = Tensor::new(Matrix::ones(4, 2), true);
        let h = x.matmul(&w);
        let loss = h.relu().sum();
        // Shape corruption: the tape recorded matmul(3x4, 4x2) -> 3x2.
        h.update_value(|m| *m = Matrix::ones(5, 5));
        tape::verify_loss(&loss).diagnostics.len()
    })
}

/// Seeds one use-after-release and one double-release against the buffer
/// pool and counts sanitizer reports.
fn pool_demo() -> usize {
    pool::with_pool(true, || {
        chk::with_check(true, || {
            pool::trim();
            let (_, violations) = pool::capture_pool_violations(|| {
                pool::seed_use_after_release_for_tests();
                pool::seed_double_release_for_tests();
            });
            pool::trim();
            violations.len()
        })
    })
}

/// Declares an overlapping write plan in a parallel region and counts
/// race-checker reports.
fn race_demo() -> usize {
    chk::with_check(true, || {
        let _op = chk::op_scope("smoke_racy_kernel");
        let (_, violations) = race::capture_race_violations(|| {
            let region = race::Region::new("check_smoke").expect("checks are on");
            region.record(0, 0x1000, 0..6, race::AccessKind::Write);
            region.record(1, 0x1000, 5..10, race::AccessKind::Write);
            region.finish();
        });
        violations.len()
    })
}

/// Lints the seeded fixture tree (one deliberate violation per rule).
fn lint_demo() -> usize {
    let fixtures = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"));
    autoac_check::lint::lint_root(&fixtures).diagnostics.len()
}

fn main() -> ExitCode {
    let tape = tape_demo();
    let pool = pool_demo();
    let race = race_demo();
    let lint = lint_demo();
    let ok = tape > 0 && pool >= 2 && race > 0 && lint >= 4;
    println!(
        "{{\"tape\":{tape},\"pool\":{pool},\"race\":{race},\"lint\":{lint},\"all_caught\":{ok}}}"
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
