//! `autoac-lint` — runs the hand-rolled project lint (and, with
//! `--analyze`, the whole-workspace static analyses) over the repository.
//!
//! Usage:
//!
//! ```text
//! cargo run -p autoac-check --bin autoac-lint              # lint the repo
//! cargo run -p autoac-check --bin autoac-lint -- --json    # JSON summary only
//! cargo run -p autoac-check --bin autoac-lint -- --analyze # lint + analyses
//! cargo run -p autoac-check --bin autoac-lint -- --analyze --json
//! cargo run -p autoac-check --bin autoac-lint -- --root path/to/tree
//! ```
//!
//! `--analyze` runs the token-level lint plus the four whole-program
//! analyses (panic-reachability on the serving path, env-var contract,
//! RNG discipline, unsafe audit); with `--json` it prints the full
//! `results/ANALYSIS.json` baseline document instead of the one-line
//! summary.
//!
//! Exits 1 when any finding survives, 0 on a clean tree, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut json = false;
    let mut analyze = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--analyze" => analyze = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("autoac-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("autoac-lint: unknown argument `{other}`");
                eprintln!("usage: autoac-lint [--root <dir>] [--analyze] [--json]");
                return ExitCode::from(2);
            }
        }
    }

    if analyze {
        let out = match autoac_check::analyze::rules::analyze_root(&root) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("autoac-lint: failed to load {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        if json {
            print!("{}", out.to_json());
        } else {
            println!("{}", out.render_text());
        }
        return if out.report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let report = autoac_check::lint::lint_root(&root);
    if json {
        println!("{}", report.json_summary());
    } else {
        println!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
