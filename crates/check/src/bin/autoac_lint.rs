//! `autoac-lint` — runs the hand-rolled project lint over the repository.
//!
//! Usage:
//!
//! ```text
//! cargo run -p autoac-check --bin autoac-lint            # lint the repo
//! cargo run -p autoac-check --bin autoac-lint -- --json  # JSON summary only
//! cargo run -p autoac-check --bin autoac-lint -- --root path/to/tree
//! ```
//!
//! Exits 1 when any finding survives, 0 on a clean tree, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("autoac-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("autoac-lint: unknown argument `{other}`");
                eprintln!("usage: autoac-lint [--root <dir>] [--json]");
                return ExitCode::from(2);
            }
        }
    }

    let report = autoac_check::lint::lint_root(&root);
    if json {
        println!("{}", report.json_summary());
    } else {
        println!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
