//! Shared diagnostics for every analysis in `autoac-check`.
//!
//! All four analyses (tape verifier, pool sanitizer frontend, race checker
//! frontend, source lint) funnel their findings through [`Diagnostic`] and
//! [`Report`], so new checks plug in without inventing another report
//! format. A [`Report`] renders both as human-readable text (one finding
//! per line, `file:line`-style locations where applicable) and as a
//! one-line JSON summary for CI tooling (`check_smoke`).

use std::fmt;

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    /// Autograd tape verifier (shapes, topo order, dead parameters).
    Tape,
    /// Pool provenance sanitizer (use-after-release / double-release).
    Pool,
    /// Parallel-region race checker.
    Race,
    /// Hand-rolled source lint.
    Lint,
    /// Panic-reachability over the serving-path call graph.
    Panic,
    /// `AUTOAC_*` environment-variable contract.
    Env,
    /// RNG-stream discipline (sanctioned constructors only).
    Rng,
    /// `unsafe` audit (adjacent SAFETY comments).
    Unsafe,
}

impl Analysis {
    /// Stable lowercase name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Analysis::Tape => "tape",
            Analysis::Pool => "pool",
            Analysis::Race => "race",
            Analysis::Lint => "lint",
            Analysis::Panic => "panic",
            Analysis::Env => "env",
            Analysis::Rng => "rng",
            Analysis::Unsafe => "unsafe",
        }
    }
}

/// One finding from one analysis.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Producing analysis.
    pub analysis: Analysis,
    /// Short machine-friendly rule identifier, e.g. `shape-mismatch`,
    /// `dead-param`, `unwrap-in-lib`.
    pub rule: &'static str,
    /// Human-readable description naming the offending op / file / buffer.
    pub message: String,
    /// `file:line` for lint findings, `op \`name\` (node #id)` style for
    /// tape findings; empty when there is no meaningful anchor.
    pub location: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.location.is_empty() {
            write!(f, "[{}/{}] {}", self.analysis.name(), self.rule, self.message)
        } else {
            write!(
                f,
                "[{}/{}] {}: {}",
                self.analysis.name(),
                self.rule,
                self.location,
                self.message
            )
        }
    }
}

/// A batch of findings plus coverage counters for the run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Units inspected (graph nodes for tape runs, files for lint runs).
    pub inspected: usize,
}

impl Report {
    /// A report with no findings yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no analysis found anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report (findings and coverage counters).
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.inspected += other.inspected;
    }

    /// Findings produced by one analysis.
    pub fn by_analysis(&self, a: Analysis) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.analysis == a)
    }

    /// Multi-line human-readable rendering (one finding per line), or a
    /// single "clean" line.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} inspected)", self.inspected);
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} finding(s) across {} inspected",
            self.diagnostics.len(),
            self.inspected
        ));
        out
    }

    /// One-line JSON summary: per-analysis violation counts plus totals.
    /// Hand-rolled (no serde in this workspace); keys are fixed and values
    /// are integers, so escaping is not needed.
    pub fn json_summary(&self) -> String {
        let count = |a: Analysis| self.by_analysis(a).count();
        format!(
            "{{\"inspected\":{},\"violations\":{},\"tape\":{},\"pool\":{},\"race\":{},\"lint\":{},\"panic\":{},\"env\":{},\"rng\":{},\"unsafe\":{}}}",
            self.inspected,
            self.diagnostics.len(),
            count(Analysis::Tape),
            count(Analysis::Pool),
            count(Analysis::Race),
            count(Analysis::Lint),
            count(Analysis::Panic),
            count(Analysis::Env),
            count(Analysis::Rng),
            count(Analysis::Unsafe),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_json_cover_counts() {
        let mut r = Report::new();
        r.inspected = 3;
        assert!(r.is_clean());
        assert_eq!(
            r.json_summary(),
            "{\"inspected\":3,\"violations\":0,\"tape\":0,\"pool\":0,\"race\":0,\"lint\":0,\"panic\":0,\"env\":0,\"rng\":0,\"unsafe\":0}"
        );
        r.push(Diagnostic {
            analysis: Analysis::Tape,
            rule: "shape-mismatch",
            message: "op `matmul` inner dims 3 vs 4".into(),
            location: "node #7".into(),
        });
        r.push(Diagnostic {
            analysis: Analysis::Lint,
            rule: "unwrap-in-lib",
            message: "unwrap() outside tests".into(),
            location: "crates/x/src/lib.rs:10".into(),
        });
        assert!(!r.is_clean());
        let text = r.render();
        assert!(text.contains("[tape/shape-mismatch] node #7"), "{text}");
        assert!(text.contains("2 finding(s)"), "{text}");
        assert!(r.json_summary().contains("\"violations\":2"));
        assert_eq!(r.by_analysis(Analysis::Lint).count(), 1);
    }
}
