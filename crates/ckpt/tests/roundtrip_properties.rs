//! Property tests over the binary snapshot format: every `f32` bit pattern —
//! NaN payloads, `-0.0`, subnormals, infinities — must survive a
//! write→read round trip exactly, mirroring the `-0.0` guarantee the JSON
//! writer has. Unlike JSON (which spells non-finite values as `null`), the
//! binary format stores raw IEEE-754 bits, so even NaN payloads are part of
//! the contract here.

use autoac_ckpt::{CkptError, Snapshot};
use autoac_tensor::Matrix;
use proptest::collection::vec;
use proptest::prelude::*;

/// Bit patterns that exercise every tricky corner of IEEE-754 binary32.
const SPECIAL_BITS: &[u32] = &[
    0x0000_0000, // +0.0
    0x8000_0000, // -0.0
    0x0000_0001, // smallest positive subnormal
    0x8000_0001, // smallest negative subnormal
    0x007F_FFFF, // largest subnormal
    0x0080_0000, // smallest positive normal
    0x7F7F_FFFF, // f32::MAX
    0xFF7F_FFFF, // f32::MIN
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x7FC0_0000, // canonical quiet NaN
    0xFFC0_0001, // negative quiet NaN with payload
    0x7F80_0001, // signaling NaN, minimal payload
    0x7FBF_FFFF, // signaling NaN, maximal payload
    0xFFFF_FFFF, // negative quiet NaN, all-ones payload
];

fn assert_bits_eq(got: &[f32], want_bits: &[u32]) {
    assert_eq!(got.len(), want_bits.len());
    for (i, (g, w)) in got.iter().zip(want_bits).enumerate() {
        assert_eq!(
            g.to_bits(),
            *w,
            "element {i}: bits {:#010x} came back as {:#010x}",
            w,
            g.to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f32_sections_roundtrip_every_bit_pattern(
        random_bits in vec(0u32..u32::MAX, 0..200),
        offset in 0u32..u32::MAX,
    ) {
        // Random patterns plus every special value, so each case covers the
        // whole tricky corner set regardless of what the RNG drew.
        let mut bits = random_bits;
        bits.extend_from_slice(SPECIAL_BITS);
        bits.push(offset);
        let values: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();

        let mut snap = Snapshot::new();
        snap.put_f32s("payload", &values);
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_bits_eq(&back.get_f32s("payload").unwrap(), &bits);
    }

    #[test]
    fn matrix_sections_roundtrip_every_bit_pattern(
        rows in 1usize..6,
        cols in 1usize..6,
        seed_bits in vec(0u32..u32::MAX, 36),
    ) {
        // Fill an rows×cols matrix from the pattern pool, cycling specials in.
        let n = rows * cols;
        let bits: Vec<u32> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    SPECIAL_BITS[i % SPECIAL_BITS.len()]
                } else {
                    seed_bits[i % seed_bits.len()]
                }
            })
            .collect();
        let m = Matrix::from_vec(rows, cols, bits.iter().map(|&b| f32::from_bits(b)).collect());

        let mut snap = Snapshot::new();
        snap.put_matrix("m", &m);
        snap.put_matrices("ms", std::slice::from_ref(&m));
        let back = Snapshot::decode(&snap.encode()).unwrap();

        let single = back.get_matrix("m").unwrap();
        prop_assert_eq!(single.shape(), (rows, cols));
        assert_bits_eq(single.data(), &bits);
        let listed = back.get_matrices("ms").unwrap();
        prop_assert_eq!(listed.len(), 1);
        assert_bits_eq(listed[0].data(), &bits);
    }

    #[test]
    fn corrupting_any_payload_byte_is_detected(
        payload in vec(0u32..u32::MAX, 1..64),
        victim in 0usize..1024,
        flip in 1u32..256,
    ) {
        let flip = flip as u8;
        let mut snap = Snapshot::new();
        snap.put_u32s("data", &payload);
        let clean = snap.encode();
        // Corrupt one byte inside the payload region (the last 4 bytes are
        // the CRC; flipping those is equally detected, so include them).
        let payload_start = clean.len() - payload.len() * 4 - 4;
        let idx = payload_start + victim % (payload.len() * 4 + 4);
        let mut bad = clean.clone();
        bad[idx] ^= flip;
        match Snapshot::decode(&bad) {
            Err(CkptError::Crc { section }) => prop_assert_eq!(section.as_str(), "data"),
            other => panic!("corruption at byte {idx} not caught: {other:?}"),
        }
    }
}

#[test]
fn u32_max_bit_pattern_roundtrips() {
    // The range strategy above is half-open, so pin the all-ones word (a
    // negative quiet NaN with full payload) explicitly.
    let values = [f32::from_bits(u32::MAX)];
    let mut snap = Snapshot::new();
    snap.put_f32s("x", &values);
    let back = Snapshot::decode(&snap.encode()).unwrap();
    assert_eq!(back.get_f32s("x").unwrap()[0].to_bits(), u32::MAX);
}
