//! # autoac-ckpt
//!
//! Crash-safe checkpointing and bit-exact resume for AutoAC runs.
//!
//! The bi-level search (paper §IV, Algorithm 1) is the most expensive stage
//! of the pipeline; this crate makes it durable. A run can be frozen at any
//! epoch boundary into a binary snapshot and restarted **bit-identically**:
//! the snapshot captures every ω parameter leaf, both Adam states (first and
//! second moments plus step counts for the ω and α groups), the α matrix,
//! cluster assignments, early-stopping counters, and the raw xoshiro256++
//! RNG state, all with exact IEEE-754 bit patterns (NaN payloads, `-0.0`,
//! and subnormals included).
//!
//! The format is hand-rolled (the build environment vendors all third-party
//! code, so no serde): a magic + version header followed by named sections,
//! each CRC-32-checked — see [`format`] for the byte layout. Writes are
//! atomic (tmp file + rename) and a configurable number of recent snapshots
//! is retained, so a crash mid-write or a corrupted file costs at most a few
//! epochs of recomputation, never the run.
//!
//! Snapshots record the graph's structural fingerprint, a config
//! fingerprint, and the run seed; resuming against a different dataset,
//! config, or seed fails loudly ([`CkptError::Mismatch`]) instead of
//! silently diverging.
//!
//! Layering: [`format::Snapshot`] is the container, [`dir::CheckpointDir`]
//! manages naming/retention/fallback on disk, [`state`] defines the typed
//! search/train payloads, and [`policy::CheckpointPolicy`] is the knob
//! surface the `autoac-core` loops consume.

#![warn(missing_docs)]

pub mod crc;
pub mod dir;
pub mod format;
pub mod policy;
pub mod serve;
pub mod state;

pub use crc::crc32;
pub use dir::CheckpointDir;
pub use format::{CkptError, Snapshot, MAGIC, VERSION};
pub use policy::CheckpointPolicy;
pub use serve::{ServeState, SERVE_KIND};
pub use state::{Fingerprint, RunMeta, SearchState, TrainState};
