//! The knob surface training loops consume: where snapshots go, how often
//! they are taken, how many are retained, and whether/where to resume from.

use std::path::PathBuf;
use std::time::Duration;

use crate::dir::CheckpointDir;
use crate::format::{CkptError, Snapshot};

#[derive(Debug, Clone)]
enum ResumeMode {
    /// Start fresh even if snapshots exist.
    Fresh,
    /// Resume from the newest readable snapshot in the directory (falling
    /// back past corrupted ones), or start fresh if none is readable.
    Latest,
    /// Resume from one specific snapshot file; failure to read it is a hard
    /// error rather than a silent fresh start.
    Path(PathBuf),
}

/// Checkpointing configuration handed to [`search`](../autoac_core) and
/// trainer loops. Built fluently:
///
/// ```no_run
/// use autoac_ckpt::CheckpointPolicy;
/// let policy = CheckpointPolicy::new("runs/dblp-search")
///     .checkpoint_every(5)
///     .keep_last(3);
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    dir: PathBuf,
    every: usize,
    keep: usize,
    resume: ResumeMode,
    throttle: Option<Duration>,
}

impl CheckpointPolicy {
    /// Policy rooted at `dir`: snapshot every epoch, keep the last 3,
    /// resume from the latest readable snapshot when one exists.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 1,
            keep: 3,
            resume: ResumeMode::Latest,
            throttle: None,
        }
    }

    /// Snapshot after every `n` completed epochs (`n ≥ 1`).
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        assert!(n >= 1, "checkpoint_every: interval must be at least 1");
        self.every = n;
        self
    }

    /// Retain the newest `k` snapshots (`k ≥ 1`); older ones are pruned at
    /// each save.
    pub fn keep_last(mut self, k: usize) -> Self {
        assert!(k >= 1, "keep_last: must retain at least one snapshot");
        self.keep = k;
        self
    }

    /// Never resume — always start from scratch (snapshots are still
    /// written).
    pub fn fresh(mut self) -> Self {
        self.resume = ResumeMode::Fresh;
        self
    }

    /// Resume from one specific snapshot file instead of the newest in the
    /// directory. Reading it fails hard instead of falling back.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = ResumeMode::Path(path.into());
        self
    }

    /// Sleep this many milliseconds at every epoch boundary. A pacing aid
    /// for fault-injection tests (gives an external `kill -9` a wide window
    /// to land mid-run); never useful in production runs.
    pub fn throttle_ms(mut self, ms: u64) -> Self {
        self.throttle = (ms > 0).then(|| Duration::from_millis(ms));
        self
    }

    /// The checkpoint directory root.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Whether a snapshot is due after `epochs_done` completed epochs.
    pub fn should_checkpoint(&self, epochs_done: usize) -> bool {
        epochs_done > 0 && epochs_done % self.every == 0
    }

    /// Atomically writes a snapshot and prunes to the retention window.
    pub fn save(&self, epochs_done: usize, snap: &Snapshot) -> Result<PathBuf, CkptError> {
        CheckpointDir::new(&self.dir)?.save(epochs_done, snap, self.keep)
    }

    /// The snapshot to resume from, per the policy's resume mode:
    /// `Ok(None)` means "start fresh" (either requested, or no readable
    /// snapshot exists yet). An explicit `resume_from` path that cannot be
    /// read is an error.
    pub fn resume_snapshot(&self) -> Result<Option<(usize, Snapshot)>, CkptError> {
        match &self.resume {
            ResumeMode::Fresh => Ok(None),
            ResumeMode::Latest => {
                if !self.dir.exists() {
                    return Ok(None);
                }
                Ok(CheckpointDir::new(&self.dir)?.load_latest())
            }
            ResumeMode::Path(path) => {
                let snap = Snapshot::read(path)?;
                // The epoch count lives in the state sections; callers read
                // it from there. 0 here is a placeholder the caller ignores.
                Ok(Some((0, snap)))
            }
        }
    }

    /// A derived policy for a sub-stage (e.g. `search` vs. `retrain` of one
    /// AutoAC run), rooted in a subdirectory. An explicit `resume_from`
    /// path does not propagate — sub-stages go back to latest-in-dir.
    pub fn substage(&self, name: &str) -> Self {
        Self {
            dir: self.dir.join(name),
            every: self.every,
            keep: self.keep,
            resume: match &self.resume {
                ResumeMode::Fresh => ResumeMode::Fresh,
                _ => ResumeMode::Latest,
            },
            throttle: self.throttle,
        }
    }

    /// Applies the test-only epoch throttle (no-op unless configured).
    pub fn throttle(&self) {
        if let Some(d) = self.throttle {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence() {
        let p = CheckpointPolicy::new("/tmp/x").checkpoint_every(5);
        assert!(!p.should_checkpoint(0));
        assert!(!p.should_checkpoint(4));
        assert!(p.should_checkpoint(5));
        assert!(!p.should_checkpoint(6));
        assert!(p.should_checkpoint(10));
        let every_epoch = CheckpointPolicy::new("/tmp/x");
        assert!(every_epoch.should_checkpoint(1));
        assert!(!every_epoch.should_checkpoint(0));
    }

    #[test]
    fn fresh_never_resumes() {
        let root = std::env::temp_dir().join(format!("autoac-ckpt-pol-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let p = CheckpointPolicy::new(&root).keep_last(2);
        assert!(p.resume_snapshot().unwrap().is_none(), "no dir yet → fresh start");
        let mut s = Snapshot::new();
        s.put_u64("epochs_done", 3);
        p.save(3, &s).unwrap();
        assert!(p.resume_snapshot().unwrap().is_some());
        assert!(p.clone().fresh().resume_snapshot().unwrap().is_none());
        // Explicit path resume: must fail hard on a missing file.
        let missing = p.clone().resume_from(root.join("nope.bin"));
        assert!(missing.resume_snapshot().is_err());
        // Substage lands in a subdirectory with nothing to resume.
        let sub = p.substage("retrain");
        assert_eq!(sub.dir(), root.join("retrain"));
        assert!(sub.resume_snapshot().unwrap().is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
