//! On-disk snapshot management: naming, retention, and corruption-tolerant
//! latest-snapshot discovery.
//!
//! A checkpoint directory holds files named `ckpt-NNNNNN.bin`, where the
//! number is the count of completed epochs the snapshot captures. Saving is
//! atomic (tmp + rename, see [`Snapshot::write_atomic`]) and prunes old
//! snapshots down to a retention window; loading walks snapshots newest →
//! oldest and falls back past any snapshot that fails its CRC or parse, so
//! one corrupted file degrades a resume by a few epochs instead of killing
//! it.

use std::path::{Path, PathBuf};

use crate::format::{CkptError, Snapshot};

const PREFIX: &str = "ckpt-";
const SUFFIX: &str = ".bin";

/// A directory of retained snapshots for one run.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    root: PathBuf,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// File path for the snapshot taken after `epochs_done` epochs.
    pub fn snapshot_path(&self, epochs_done: usize) -> PathBuf {
        self.root.join(format!("{PREFIX}{epochs_done:06}{SUFFIX}"))
    }

    /// All snapshots present, as `(epochs_done, path)` sorted ascending.
    pub fn list(&self) -> Vec<(usize, PathBuf)> {
        let Ok(entries) = std::fs::read_dir(&self.root) else { return Vec::new() };
        let mut out: Vec<(usize, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let epoch = name.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?.parse().ok()?;
                Some((epoch, e.path()))
            })
            .collect();
        out.sort();
        out
    }

    /// Atomically writes a snapshot for `epochs_done` completed epochs, then
    /// prunes so that at most `keep` snapshots remain (newest win). Returns
    /// the final path.
    pub fn save(
        &self,
        epochs_done: usize,
        snap: &Snapshot,
        keep: usize,
    ) -> Result<PathBuf, CkptError> {
        let path = self.snapshot_path(epochs_done);
        snap.write_atomic(&path)?;
        let existing = self.list();
        if existing.len() > keep.max(1) {
            for (_, old) in &existing[..existing.len() - keep.max(1)] {
                // Best-effort: a prune failure must not fail the save.
                let _ = std::fs::remove_file(old);
            }
        }
        Ok(path)
    }

    /// Loads the newest readable snapshot, falling back past corrupted or
    /// truncated files (each skip is warned about on stderr and counted
    /// under the obs `ckpt_read_fallbacks` counter). `None` if no snapshot
    /// can be read.
    pub fn load_latest(&self) -> Option<(usize, Snapshot)> {
        for (epoch, path) in self.list().into_iter().rev() {
            match Snapshot::read(&path) {
                Ok(snap) => return Some((epoch, snap)),
                Err(err) => {
                    autoac_obs::counter_add("ckpt_read_fallbacks", 1);
                    autoac_obs::warn(
                        "ckpt",
                        &format!(
                            "skipping snapshot {} ({err}); falling back to the previous \
                             retained snapshot",
                            path.display()
                        ),
                    );
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("autoac-ckpt-dir-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn snap(marker: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.put_u64("marker", marker);
        s
    }

    #[test]
    fn save_prunes_to_retention_window() {
        let dir = CheckpointDir::new(tmp_dir("prune")).unwrap();
        for epoch in [2, 4, 6, 8, 10] {
            dir.save(epoch, &snap(epoch as u64), 3).unwrap();
        }
        let kept: Vec<usize> = dir.list().into_iter().map(|(e, _)| e).collect();
        assert_eq!(kept, vec![6, 8, 10]);
        let (epoch, s) = dir.load_latest().unwrap();
        assert_eq!(epoch, 10);
        assert_eq!(s.get_u64("marker").unwrap(), 10);
        std::fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn load_latest_falls_back_past_corruption() {
        let dir = CheckpointDir::new(tmp_dir("corrupt")).unwrap();
        dir.save(2, &snap(2), 3).unwrap();
        dir.save(4, &snap(4), 3).unwrap();
        // Corrupt the newest snapshot's payload bytes.
        let newest = dir.snapshot_path(4);
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 6; // inside the payload of the single section
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();
        assert!(matches!(Snapshot::read(&newest), Err(CkptError::Crc { .. })));
        let (epoch, s) = dir.load_latest().unwrap();
        assert_eq!(epoch, 2, "must fall back to the previous good snapshot");
        assert_eq!(s.get_u64("marker").unwrap(), 2);
        // Truncate the older one too → nothing readable remains.
        let older = dir.snapshot_path(2);
        let bytes = std::fs::read(&older).unwrap();
        std::fs::write(&older, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::write(&newest, b"garbage").unwrap();
        assert!(dir.load_latest().is_none());
        std::fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn empty_dir_has_no_latest() {
        let dir = CheckpointDir::new(tmp_dir("empty")).unwrap();
        assert!(dir.load_latest().is_none());
        assert!(dir.list().is_empty());
        std::fs::remove_dir_all(dir.path()).unwrap();
    }
}
