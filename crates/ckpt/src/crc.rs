//! CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32fast` variant), hand-rolled
//! because the build environment has no registry access. Table-driven,
//! byte-at-a-time — snapshot payloads are at most a few MB, so this is
//! nowhere near a hot path.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (matches zlib's `crc32(0, data)`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        // analyze:allow(panic, TABLE has 256 entries and the index is masked with 0xFF)
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"autoac checkpoint payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(crc32(&mutated), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
