//! Typed run states layered on the section container: what a search or
//! retraining loop must persist to restart bit-identically, plus the
//! metadata that makes a resume against the wrong run fail loudly.

use autoac_tensor::{AdamState, Matrix};

use crate::format::{CkptError, Snapshot};

/// A tiny FNV-1a accumulator for config fingerprints. Callers feed every
/// field that shapes the per-epoch trajectory; horizon fields (total epoch
/// counts) are deliberately left out so an interrupted run can be resumed
/// with a longer budget.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Fresh accumulator (FNV-1a offset basis).
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Mixes a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Mixes an `f32` by bit pattern.
    pub fn f32(self, v: f32) -> Self {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Mixes a bool.
    pub fn bool(self, v: bool) -> Self {
        self.bytes(&[v as u8])
    }

    /// Final digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Identity of a run: which stage wrote the snapshot and the fingerprints a
/// resume must match. `graph_fp` is the structural fingerprint of the graph
/// (`autoac_graph::HeteroGraph::structural_fingerprint`), `config_fp` a
/// [`Fingerprint`] over the trajectory-shaping config fields, and `seed` the
/// run seed — together they guarantee a snapshot is only ever applied to the
/// run that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Stage tag, e.g. `"search"` or `"train-cls"`.
    pub kind: String,
    /// Structural fingerprint of the graph the run operates on.
    pub graph_fp: u64,
    /// Fingerprint of the trajectory-shaping config fields.
    pub config_fp: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Fingerprint of the shard/segment plan the run trains over
    /// (`autoac_graph::ShardPlan::fingerprint` mixed with the minibatch
    /// schedule), or `0` for whole-graph full-batch runs. Resuming a
    /// sharded run under a different partition or batch schedule would
    /// silently diverge, so the plan is part of the identity.
    pub segment_fp: u64,
}

impl RunMeta {
    /// Whole-graph identity (no shard/segment plan).
    pub fn whole_graph(kind: impl Into<String>, graph_fp: u64, config_fp: u64, seed: u64) -> Self {
        Self { kind: kind.into(), graph_fp, config_fp, seed, segment_fp: 0 }
    }

    pub(crate) fn write(&self, snap: &mut Snapshot) {
        snap.put_str("meta.kind", &self.kind);
        snap.put_u64("meta.graph_fp", self.graph_fp);
        snap.put_u64("meta.config_fp", self.config_fp);
        snap.put_u64("meta.seed", self.seed);
        snap.put_u64("meta.segment_fp", self.segment_fp);
    }

    pub(crate) fn read(snap: &Snapshot) -> Result<Self, CkptError> {
        Ok(Self {
            kind: snap.get_str("meta.kind")?,
            graph_fp: snap.get_u64("meta.graph_fp")?,
            config_fp: snap.get_u64("meta.config_fp")?,
            seed: snap.get_u64("meta.seed")?,
            // Absent in snapshots written before segment awareness: those
            // were whole-graph runs by construction.
            segment_fp: if snap.contains("meta.segment_fp") {
                snap.get_u64("meta.segment_fp")?
            } else {
                0
            },
        })
    }

    /// Checks that a snapshot's identity matches the resuming run; any
    /// disagreement is a hard error (resuming would silently diverge).
    pub fn validate(&self, expected: &Self) -> Result<(), CkptError> {
        if self.kind != expected.kind {
            return Err(CkptError::Malformed {
                section: "meta.kind".to_string(),
                reason: "snapshot was written by a different run stage",
            });
        }
        for (field, found, want) in [
            ("graph fingerprint", self.graph_fp, expected.graph_fp),
            ("config fingerprint", self.config_fp, expected.config_fp),
            ("seed", self.seed, expected.seed),
            ("segment fingerprint", self.segment_fp, expected.segment_fp),
        ] {
            if found != want {
                return Err(CkptError::Mismatch { field, found, expected: want });
            }
        }
        Ok(())
    }
}

fn write_adam(snap: &mut Snapshot, prefix: &str, state: &AdamState) {
    snap.put_u64(&format!("{prefix}.t"), state.t);
    snap.put_matrices(&format!("{prefix}.m"), &state.m);
    snap.put_matrices(&format!("{prefix}.v"), &state.v);
}

fn read_adam(snap: &Snapshot, prefix: &str) -> Result<AdamState, CkptError> {
    Ok(AdamState {
        t: snap.get_u64(&format!("{prefix}.t"))?,
        m: snap.get_matrices(&format!("{prefix}.m"))?,
        v: snap.get_matrices(&format!("{prefix}.v"))?,
    })
}

/// Everything the AutoAC bi-level search loop needs to restart a run at an
/// epoch boundary bit-identically: ω parameter leaves, both optimizer
/// states, the α matrix, cluster assignments, best-so-far tracking, the
/// clustering-loss trace, and the raw RNG state.
#[derive(Debug, Clone)]
pub struct SearchState {
    /// Run identity (validated on resume).
    pub meta: RunMeta,
    /// Completed search epochs.
    pub epochs_done: u64,
    /// Wall-clock seconds spent before this snapshot (for cumulative
    /// timing across resumes; not part of the bit-exactness contract).
    pub elapsed_seconds: f64,
    /// xoshiro256++ state of the search RNG.
    pub rng: [u64; 4],
    /// The α matrix (continuous completion parameters).
    pub alpha: Matrix,
    /// Every ω parameter leaf, in optimizer order.
    pub omega: Vec<Matrix>,
    /// Adam state of the α group.
    pub alpha_opt: AdamState,
    /// Adam state of the ω group.
    pub omega_opt: AdamState,
    /// Cluster id per `V⁻` node.
    pub cluster_of: Vec<u32>,
    /// Best validation loss seen so far.
    pub best_val: f32,
    /// Best-validation snapshot of `(α, cluster_of)`, if any epoch has
    /// produced one yet.
    pub best: Option<(Matrix, Vec<u32>)>,
    /// Per-epoch clustering-loss trace.
    pub gmoc_trace: Vec<f32>,
}

impl SearchState {
    /// Serializes into a snapshot container.
    pub fn to_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        self.meta.write(&mut snap);
        snap.put_u64("epochs_done", self.epochs_done);
        snap.put_f64("elapsed_seconds", self.elapsed_seconds);
        snap.put_u64s("rng", &self.rng);
        snap.put_matrix("alpha", &self.alpha);
        snap.put_matrices("omega", &self.omega);
        write_adam(&mut snap, "alpha_opt", &self.alpha_opt);
        write_adam(&mut snap, "omega_opt", &self.omega_opt);
        snap.put_u32s("cluster_of", &self.cluster_of);
        snap.put_f32s("best_val", &[self.best_val]);
        if let Some((alpha, clusters)) = &self.best {
            snap.put_matrix("best.alpha", alpha);
            snap.put_u32s("best.cluster_of", clusters);
        }
        snap.put_f32s("gmoc_trace", &self.gmoc_trace);
        snap
    }

    /// Deserializes from a snapshot container.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, CkptError> {
        let rng_vec = snap.get_u64s("rng")?;
        let rng: [u64; 4] = rng_vec.as_slice().try_into().map_err(|_| {
            CkptError::Malformed { section: "rng".to_string(), reason: "expected 4 u64 words" }
        })?;
        let best = if snap.contains("best.alpha") {
            Some((snap.get_matrix("best.alpha")?, snap.get_u32s("best.cluster_of")?))
        } else {
            None
        };
        let best_val = snap.get_f32s("best_val")?;
        let &[best_val] = best_val.as_slice() else {
            return Err(CkptError::Malformed {
                section: "best_val".to_string(),
                reason: "expected a single f32",
            });
        };
        Ok(Self {
            meta: RunMeta::read(snap)?,
            epochs_done: snap.get_u64("epochs_done")?,
            elapsed_seconds: snap.get_f64("elapsed_seconds")?,
            rng,
            alpha: snap.get_matrix("alpha")?,
            omega: snap.get_matrices("omega")?,
            alpha_opt: read_adam(snap, "alpha_opt")?,
            omega_opt: read_adam(snap, "omega_opt")?,
            cluster_of: snap.get_u32s("cluster_of")?,
            best_val,
            best,
            gmoc_trace: snap.get_f32s("gmoc_trace")?,
        })
    }
}

/// Everything the retraining/early-stopping loop needs to restart at an
/// epoch boundary bit-identically.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Run identity (validated on resume).
    pub meta: RunMeta,
    /// Completed training epochs.
    pub epochs_done: u64,
    /// Wall-clock seconds spent before this snapshot.
    pub elapsed_seconds: f64,
    /// xoshiro256++ state of the training RNG.
    pub rng: [u64; 4],
    /// Every parameter leaf, in `ForwardPipe::params` order.
    pub params: Vec<Matrix>,
    /// Adam state of the parameter group.
    pub opt: AdamState,
    /// Best validation metric so far.
    pub best_val: f64,
    /// Parameter snapshot at the best-validation epoch.
    pub best_snap: Vec<Matrix>,
    /// Consecutive epochs without validation improvement.
    pub bad_epochs: u64,
}

impl TrainState {
    /// Serializes into a snapshot container.
    pub fn to_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        self.meta.write(&mut snap);
        snap.put_u64("epochs_done", self.epochs_done);
        snap.put_f64("elapsed_seconds", self.elapsed_seconds);
        snap.put_u64s("rng", &self.rng);
        snap.put_matrices("params", &self.params);
        write_adam(&mut snap, "opt", &self.opt);
        snap.put_f64("best_val", self.best_val);
        snap.put_matrices("best_snap", &self.best_snap);
        snap.put_u64("bad_epochs", self.bad_epochs);
        snap
    }

    /// Deserializes from a snapshot container.
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, CkptError> {
        let rng_vec = snap.get_u64s("rng")?;
        let rng: [u64; 4] = rng_vec.as_slice().try_into().map_err(|_| {
            CkptError::Malformed { section: "rng".to_string(), reason: "expected 4 u64 words" }
        })?;
        Ok(Self {
            meta: RunMeta::read(snap)?,
            epochs_done: snap.get_u64("epochs_done")?,
            elapsed_seconds: snap.get_f64("elapsed_seconds")?,
            rng,
            params: snap.get_matrices("params")?,
            opt: read_adam(snap, "opt")?,
            best_val: snap.get_f64("best_val")?,
            best_snap: snap.get_matrices("best_snap")?,
            bad_epochs: snap.get_u64("bad_epochs")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta { kind: "search".into(), graph_fp: 0xAB, config_fp: 0xCD, seed: 7, segment_fp: 0 }
    }

    fn search_state() -> SearchState {
        SearchState {
            meta: meta(),
            epochs_done: 12,
            elapsed_seconds: 3.5,
            rng: [9, 8, 7, 6],
            alpha: Matrix::from_rows(&[&[0.1, 0.9], &[-0.0, f32::NAN]]),
            omega: vec![Matrix::ones(2, 2), Matrix::zeros(1, 3)],
            alpha_opt: AdamState { t: 12, m: vec![Matrix::zeros(2, 2)], v: vec![Matrix::zeros(2, 2)] },
            omega_opt: AdamState {
                t: 12,
                m: vec![Matrix::ones(2, 2), Matrix::zeros(1, 3)],
                v: vec![Matrix::ones(2, 2), Matrix::zeros(1, 3)],
            },
            cluster_of: vec![0, 1, 1, 0],
            best_val: 0.25,
            best: Some((Matrix::eye(2), vec![1, 0, 0, 1])),
            gmoc_trace: vec![-0.1, -0.2],
        }
    }

    #[test]
    fn search_state_roundtrip() {
        let s = search_state();
        let snap = Snapshot::decode(&s.to_snapshot().encode()).unwrap();
        let back = SearchState::from_snapshot(&snap).unwrap();
        assert_eq!(back.meta, s.meta);
        assert_eq!(back.epochs_done, 12);
        assert_eq!(back.rng, [9, 8, 7, 6]);
        assert_eq!(back.alpha.get(1, 0).to_bits(), (-0.0f32).to_bits());
        assert!(back.alpha.get(1, 1).is_nan());
        assert_eq!(back.omega.len(), 2);
        assert_eq!(back.omega_opt.t, 12);
        assert_eq!(back.cluster_of, vec![0, 1, 1, 0]);
        assert_eq!(back.best.as_ref().unwrap().1, vec![1, 0, 0, 1]);
        assert_eq!(back.gmoc_trace, vec![-0.1, -0.2]);
    }

    #[test]
    fn search_state_without_best_roundtrips() {
        let mut s = search_state();
        s.best = None;
        let snap = Snapshot::decode(&s.to_snapshot().encode()).unwrap();
        assert!(SearchState::from_snapshot(&snap).unwrap().best.is_none());
    }

    #[test]
    fn train_state_roundtrip() {
        let s = TrainState {
            meta: RunMeta { kind: "train-cls".into(), ..meta() },
            epochs_done: 40,
            elapsed_seconds: 1.0,
            rng: [1, 2, 3, 4],
            params: vec![Matrix::ones(3, 3)],
            opt: AdamState { t: 40, m: vec![Matrix::zeros(3, 3)], v: vec![Matrix::zeros(3, 3)] },
            best_val: 0.875,
            best_snap: vec![Matrix::eye(3)],
            bad_epochs: 5,
        };
        let snap = Snapshot::decode(&s.to_snapshot().encode()).unwrap();
        let back = TrainState::from_snapshot(&snap).unwrap();
        assert_eq!(back.meta.kind, "train-cls");
        assert_eq!(back.best_val, 0.875);
        assert_eq!(back.bad_epochs, 5);
        assert_eq!(back.best_snap[0], Matrix::eye(3));
    }

    #[test]
    fn validate_catches_mismatches() {
        let a = meta();
        assert!(a.validate(&a).is_ok());
        let mut b = meta();
        b.config_fp ^= 1;
        assert!(matches!(
            a.validate(&b),
            Err(CkptError::Mismatch { field: "config fingerprint", .. })
        ));
        let mut c = meta();
        c.seed += 1;
        assert!(matches!(a.validate(&c), Err(CkptError::Mismatch { field: "seed", .. })));
        let mut d = meta();
        d.kind = "train-cls".into();
        assert!(a.validate(&d).is_err());
        let mut e = meta();
        e.segment_fp = 0x5A5A;
        assert!(matches!(
            a.validate(&e),
            Err(CkptError::Mismatch { field: "segment fingerprint", .. })
        ));
    }

    #[test]
    fn segment_fp_defaults_to_whole_graph_when_absent() {
        // A snapshot written without the segment field (pre-shard format)
        // reads back as segment_fp = 0, i.e. a whole-graph run.
        let mut snap = Snapshot::new();
        let m = meta();
        snap.put_str("meta.kind", &m.kind);
        snap.put_u64("meta.graph_fp", m.graph_fp);
        snap.put_u64("meta.config_fp", m.config_fp);
        snap.put_u64("meta.seed", m.seed);
        let back = RunMeta::read(&snap).unwrap();
        assert_eq!(back.segment_fp, 0);
        assert!(back.validate(&RunMeta::whole_graph("search", 0xAB, 0xCD, 7)).is_ok());
    }

    #[test]
    fn fingerprint_is_field_sensitive() {
        let base = Fingerprint::new().u64(8).f32(0.4).bool(true).finish();
        assert_eq!(base, Fingerprint::new().u64(8).f32(0.4).bool(true).finish());
        assert_ne!(base, Fingerprint::new().u64(9).f32(0.4).bool(true).finish());
        assert_ne!(base, Fingerprint::new().u64(8).f32(0.5).bool(true).finish());
        assert_ne!(base, Fingerprint::new().u64(8).f32(0.4).bool(false).finish());
        // -0.0 and 0.0 hash differently (bit-pattern hashing).
        assert_ne!(
            Fingerprint::new().f32(0.0).finish(),
            Fingerprint::new().f32(-0.0).finish()
        );
    }
}
