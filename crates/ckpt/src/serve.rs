//! The serving checkpoint: a self-contained export of a trained model that
//! a fresh process can load and answer queries from, bit-identically to
//! the process that trained it.
//!
//! Unlike [`SearchState`](crate::SearchState)/[`TrainState`](crate::TrainState)
//! — mid-run freezes that assume the loop around them will regenerate the
//! dataset and rebuild the pipeline — a [`ServeState`] carries everything
//! needed to do that reconstruction itself: the dataset recipe (preset
//! name, scale, seed), the backbone tag and dimensions, the searched
//! completion-operator assignment, the exact RNG state the pipeline was
//! constructed with (construction samples initial parameters, so replaying
//! it is what makes the rebuilt pipeline structurally identical), and the
//! trained parameter leaves. The same [`RunMeta`] identity guards apply:
//! loading validates the regenerated graph's structural fingerprint and
//! the recomputed config fingerprint against the stored ones, so a stale
//! or mislabeled checkpoint fails loudly instead of serving garbage.

use autoac_tensor::Matrix;

use crate::format::{CkptError, Snapshot};
use crate::state::{Fingerprint, RunMeta};

/// The [`RunMeta::kind`] tag for serving checkpoints.
pub const SERVE_KIND: &str = "serve";

/// Everything needed to reconstruct a trained model for inference in a
/// process with no memory of the training run.
#[derive(Debug, Clone)]
pub struct ServeState {
    /// Run identity; `kind` is [`SERVE_KIND`], `graph_fp` the structural
    /// fingerprint of the regenerated graph, `config_fp` the value of
    /// [`Self::config_fingerprint`], `seed` the training run seed.
    pub meta: RunMeta,
    /// Dataset preset name (`autoac_data::presets::by_name`).
    pub preset: String,
    /// Dataset scale string (`autoac_data::Scale::parse`).
    pub scale: String,
    /// Dataset generation seed.
    pub data_seed: u64,
    /// Backbone tag (`autoac_core::Backbone::parse`).
    pub backbone: String,
    /// GNN input (shared embedding) dimension.
    pub in_dim: u64,
    /// GNN hidden dimension.
    pub hidden: u64,
    /// GNN output dimension (number of classes).
    pub out_dim: u64,
    /// Message-passing layers.
    pub layers: u64,
    /// Attention heads.
    pub heads: u64,
    /// Edge-type embedding dimension (SimpleHGN).
    pub edge_dim: u64,
    /// Feature dropout (inactive at inference, but part of identity).
    pub dropout: f32,
    /// LeakyReLU negative slope.
    pub slope: f32,
    /// Edge-attention residual β (SimpleHGN).
    pub beta: f32,
    /// Completion-operator index per attribute-missing node, in
    /// `CompletionOp::ALL` order — the search's output.
    pub assignment: Vec<u32>,
    /// xoshiro256++ state captured immediately before pipeline
    /// construction; replaying it reproduces construction-time sampling
    /// (parameter init) exactly.
    pub ctor_rng: [u64; 4],
    /// Seed for the per-batch inference RNG. Every batched forward reseeds
    /// from this value, which is what makes responses independent of batch
    /// composition (the serving determinism contract).
    pub infer_seed: u64,
    /// Trained parameter leaves, in `ForwardPipe::params` order.
    pub params: Vec<Matrix>,
    /// Training epochs completed (surfaced by `/healthz`).
    pub epochs_done: u64,
    /// Test macro-F1 at export time (surfaced by `/healthz`).
    pub macro_f1: f64,
    /// Test micro-F1 at export time (surfaced by `/healthz`).
    pub micro_f1: f64,
}

impl ServeState {
    /// Fingerprint over every field that shapes inference output: the
    /// dataset recipe, backbone and dimensions, the completion assignment,
    /// the construction RNG, and the inference seed. Stored in
    /// `meta.config_fp` at export and recomputed + compared at load.
    pub fn config_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new()
            .bytes(self.preset.as_bytes())
            .bytes(self.scale.as_bytes())
            .u64(self.data_seed)
            .bytes(self.backbone.as_bytes())
            .u64(self.in_dim)
            .u64(self.hidden)
            .u64(self.out_dim)
            .u64(self.layers)
            .u64(self.heads)
            .u64(self.edge_dim)
            .f32(self.dropout)
            .f32(self.slope)
            .f32(self.beta)
            .u64(self.infer_seed);
        for &op in &self.assignment {
            fp = fp.u64(op as u64);
        }
        for &w in &self.ctor_rng {
            fp = fp.u64(w);
        }
        fp.finish()
    }

    /// Checks internal consistency: the kind tag and that the stored
    /// config fingerprint matches the recomputed one (a mismatch means the
    /// file was produced by an incompatible writer or tampered with).
    pub fn validate_self(&self) -> Result<(), CkptError> {
        if self.meta.kind != SERVE_KIND {
            return Err(CkptError::Malformed {
                section: "meta.kind".to_string(),
                reason: "not a serving checkpoint",
            });
        }
        let want = self.config_fingerprint();
        if self.meta.config_fp != want {
            return Err(CkptError::Mismatch {
                field: "config fingerprint",
                found: self.meta.config_fp,
                expected: want,
            });
        }
        Ok(())
    }

    /// Serializes into a snapshot container.
    pub fn to_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        self.meta.write(&mut snap);
        snap.put_str("data.preset", &self.preset);
        snap.put_str("data.scale", &self.scale);
        snap.put_u64("data.seed", self.data_seed);
        snap.put_str("model.backbone", &self.backbone);
        snap.put_u64s(
            "model.dims",
            &[self.in_dim, self.hidden, self.out_dim, self.layers, self.heads, self.edge_dim],
        );
        snap.put_f32s("model.floats", &[self.dropout, self.slope, self.beta]);
        snap.put_u32s("assignment", &self.assignment);
        snap.put_u64s("ctor_rng", &self.ctor_rng);
        snap.put_u64("infer_seed", self.infer_seed);
        snap.put_matrices("params", &self.params);
        snap.put_u64("epochs_done", self.epochs_done);
        snap.put_f64("macro_f1", self.macro_f1);
        snap.put_f64("micro_f1", self.micro_f1);
        snap
    }

    /// Deserializes from a snapshot container (and [`Self::validate_self`]s).
    pub fn from_snapshot(snap: &Snapshot) -> Result<Self, CkptError> {
        let dims = snap.get_u64s("model.dims")?;
        let &[in_dim, hidden, out_dim, layers, heads, edge_dim] = dims.as_slice() else {
            return Err(CkptError::Malformed {
                section: "model.dims".to_string(),
                reason: "expected 6 u64 dims",
            });
        };
        let floats = snap.get_f32s("model.floats")?;
        let &[dropout, slope, beta] = floats.as_slice() else {
            return Err(CkptError::Malformed {
                section: "model.floats".to_string(),
                reason: "expected 3 f32 fields",
            });
        };
        let rng_vec = snap.get_u64s("ctor_rng")?;
        let ctor_rng: [u64; 4] = rng_vec.as_slice().try_into().map_err(|_| {
            CkptError::Malformed { section: "ctor_rng".to_string(), reason: "expected 4 u64 words" }
        })?;
        let state = Self {
            meta: RunMeta::read(snap)?,
            preset: snap.get_str("data.preset")?,
            scale: snap.get_str("data.scale")?,
            data_seed: snap.get_u64("data.seed")?,
            backbone: snap.get_str("model.backbone")?,
            in_dim,
            hidden,
            out_dim,
            layers,
            heads,
            edge_dim,
            dropout,
            slope,
            beta,
            assignment: snap.get_u32s("assignment")?,
            ctor_rng,
            infer_seed: snap.get_u64("infer_seed")?,
            params: snap.get_matrices("params")?,
            epochs_done: snap.get_u64("epochs_done")?,
            macro_f1: snap.get_f64("macro_f1")?,
            micro_f1: snap.get_f64("micro_f1")?,
        };
        state.validate_self()?;
        Ok(state)
    }

    /// Writes the checkpoint to `path` atomically (tmp file + rename).
    pub fn write_atomic(&self, path: &std::path::Path) -> Result<(), CkptError> {
        self.to_snapshot().write_atomic(path)
    }

    /// Reads and validates a checkpoint file.
    pub fn read(path: &std::path::Path) -> Result<Self, CkptError> {
        Self::from_snapshot(&Snapshot::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServeState {
        let mut s = ServeState {
            meta: RunMeta {
                kind: SERVE_KIND.into(),
                graph_fp: 0x1234,
                config_fp: 0,
                seed: 11,
                segment_fp: 0,
            },
            preset: "imdb".into(),
            scale: "tiny".into(),
            data_seed: 5,
            backbone: "gcn".into(),
            in_dim: 16,
            hidden: 32,
            out_dim: 4,
            layers: 2,
            heads: 4,
            edge_dim: 8,
            dropout: 0.5,
            slope: 0.05,
            beta: 0.05,
            assignment: vec![0, 2, 1, 1],
            ctor_rng: [1, 2, 3, 4],
            infer_seed: 0xCAFE,
            params: vec![
                Matrix::from_rows(&[&[0.5, -0.0], &[f32::NAN, 1.5e-42]]),
                Matrix::eye(3),
            ],
            epochs_done: 40,
            macro_f1: 0.5,
            micro_f1: 0.625,
        };
        s.meta.config_fp = s.config_fingerprint();
        s
    }

    #[test]
    fn roundtrips_bit_exactly_through_encode() {
        let s = state();
        let snap = Snapshot::decode(&s.to_snapshot().encode()).unwrap();
        let back = ServeState::from_snapshot(&snap).unwrap();
        assert_eq!(back.meta, s.meta);
        assert_eq!((back.preset.as_str(), back.scale.as_str()), ("imdb", "tiny"));
        assert_eq!(back.backbone, "gcn");
        assert_eq!(
            (back.in_dim, back.hidden, back.out_dim, back.layers, back.heads, back.edge_dim),
            (16, 32, 4, 2, 4, 8)
        );
        assert_eq!(back.assignment, vec![0, 2, 1, 1]);
        assert_eq!(back.ctor_rng, [1, 2, 3, 4]);
        // Exact bit patterns survive: -0.0, NaN, subnormals.
        assert_eq!(back.params[0].get(0, 1).to_bits(), (-0.0f32).to_bits());
        assert!(back.params[0].get(1, 0).is_nan());
        assert_eq!(back.params[0].get(1, 1).to_bits(), 1.5e-42f32.to_bits());
        assert_eq!(back.epochs_done, 40);
        assert_eq!(back.micro_f1, 0.625);
    }

    #[test]
    fn roundtrips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("autoac_serve_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.bin");
        let s = state();
        s.write_atomic(&path).unwrap();
        let back = ServeState::read(&path).unwrap();
        assert_eq!(back.meta, s.meta);
        assert_eq!(back.params.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_is_field_sensitive() {
        let base = state().config_fingerprint();
        let mut s = state();
        s.assignment[1] = 3;
        assert_ne!(base, s.config_fingerprint());
        let mut s = state();
        s.infer_seed ^= 1;
        assert_ne!(base, s.config_fingerprint());
        let mut s = state();
        s.backbone = "gat".into();
        assert_ne!(base, s.config_fingerprint());
        let mut s = state();
        s.ctor_rng[3] ^= 1;
        assert_ne!(base, s.config_fingerprint());
    }

    #[test]
    fn loading_rejects_wrong_kind_and_stale_fingerprint() {
        let mut s = state();
        s.meta.kind = "train-cls".into();
        let snap = Snapshot::decode(&s.to_snapshot().encode()).unwrap();
        assert!(matches!(
            ServeState::from_snapshot(&snap),
            Err(CkptError::Malformed { .. })
        ));

        let mut s = state();
        s.infer_seed ^= 1; // config changed but stored fp not updated
        let snap = Snapshot::decode(&s.to_snapshot().encode()).unwrap();
        assert!(matches!(
            ServeState::from_snapshot(&snap),
            Err(CkptError::Mismatch { field: "config fingerprint", .. })
        ));
    }
}
