//! The snapshot container format: a magic/version header followed by a flat
//! table of named, CRC-checked sections.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"AUTOACKP"
//! 8       4     format version, u32 LE (currently 1)
//! 12      4     section count, u32 LE
//! then, per section:
//!         2     name length, u16 LE
//!         n     name, UTF-8
//!         8     payload length, u64 LE
//!         p     payload bytes
//!         4     CRC-32 of the payload, u32 LE
//! ```
//!
//! Everything is little-endian. Floats are stored as their raw IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so NaN payloads, `-0.0`, and subnormals
//! survive a round trip exactly — the same guarantee for every value the
//! optimizer state can reach. A truncated file surfaces as
//! [`CkptError::Truncated`]; a flipped bit surfaces as [`CkptError::Crc`]
//! naming the damaged section.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;

use autoac_tensor::Matrix;

use crate::crc::crc32;

/// File magic, first 8 bytes of every snapshot.
pub const MAGIC: &[u8; 8] = b"AUTOACKP";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors surfaced while writing, reading, or decoding a snapshot.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// Snapshot written by an unknown (newer) format version.
    BadVersion(u32),
    /// The file ends mid-structure (e.g. the process died mid-write without
    /// the atomic rename, or the file was truncated on disk).
    Truncated,
    /// A section's payload does not match its stored CRC-32.
    Crc {
        /// Name of the damaged section.
        section: String,
    },
    /// A required section is absent.
    Missing(String),
    /// A section is present but its payload does not decode as the expected
    /// shape/type.
    Malformed {
        /// Name of the offending section.
        section: String,
        /// What went wrong.
        reason: &'static str,
    },
    /// Snapshot metadata disagrees with the run trying to resume from it.
    Mismatch {
        /// Which fingerprint/field disagrees.
        field: &'static str,
        /// Value recorded in the snapshot.
        found: u64,
        /// Value of the current run.
        expected: u64,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint format version {v}"),
            CkptError::Truncated => write!(f, "checkpoint file is truncated"),
            CkptError::Crc { section } => {
                write!(f, "checkpoint section `{section}` failed its CRC check (corrupt)")
            }
            CkptError::Missing(s) => write!(f, "checkpoint is missing section `{s}`"),
            CkptError::Malformed { section, reason } => {
                write!(f, "checkpoint section `{section}` is malformed: {reason}")
            }
            CkptError::Mismatch { field, found, expected } => write!(
                f,
                "refusing to resume: snapshot {field} {found:#018x} does not match \
                 the current run's {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// An in-memory snapshot: an ordered map of named byte sections plus typed
/// put/get helpers for the payload kinds the run states need.
#[derive(Debug, Default, Clone)]
pub struct Snapshot {
    sections: BTreeMap<String, Vec<u8>>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether the snapshot holds no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Inserts (or replaces) a raw section.
    pub fn put(&mut self, name: &str, bytes: Vec<u8>) {
        self.sections.insert(name.to_string(), bytes);
    }

    /// Raw payload of a section.
    pub fn get(&self, name: &str) -> Result<&[u8], CkptError> {
        self.sections
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| CkptError::Missing(name.to_string()))
    }

    /// Whether a section exists.
    pub fn contains(&self, name: &str) -> bool {
        self.sections.contains_key(name)
    }

    // -- typed helpers ------------------------------------------------------

    /// Stores a `u64` scalar.
    pub fn put_u64(&mut self, name: &str, v: u64) {
        self.put(name, v.to_le_bytes().to_vec());
    }

    /// Reads a `u64` scalar.
    pub fn get_u64(&self, name: &str) -> Result<u64, CkptError> {
        let b = self.get(name)?;
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| malformed(name, "expected exactly 8 bytes"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Stores an `f64` scalar bit-exactly.
    pub fn put_f64(&mut self, name: &str, v: f64) {
        self.put_u64(name, v.to_bits());
    }

    /// Reads an `f64` scalar bit-exactly.
    pub fn get_f64(&self, name: &str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64(name)?))
    }

    /// Stores a `u64` slice.
    pub fn put_u64s(&mut self, name: &str, vs: &[u64]) {
        let mut out = Vec::with_capacity(vs.len() * 8);
        for v in vs {
            out.extend_from_slice(&v.to_le_bytes());
        }
        self.put(name, out);
    }

    /// Reads a `u64` slice.
    pub fn get_u64s(&self, name: &str) -> Result<Vec<u64>, CkptError> {
        let b = self.get(name)?;
        if b.len() % 8 != 0 {
            return Err(malformed(name, "length not a multiple of 8"));
        }
        // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
        Ok(b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("length checked by caller"))).collect())
    }

    /// Stores a `u32` slice.
    pub fn put_u32s(&mut self, name: &str, vs: &[u32]) {
        let mut out = Vec::with_capacity(vs.len() * 4);
        for v in vs {
            out.extend_from_slice(&v.to_le_bytes());
        }
        self.put(name, out);
    }

    /// Reads a `u32` slice.
    pub fn get_u32s(&self, name: &str) -> Result<Vec<u32>, CkptError> {
        let b = self.get(name)?;
        if b.len() % 4 != 0 {
            return Err(malformed(name, "length not a multiple of 4"));
        }
        // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
        Ok(b.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("length checked by caller"))).collect())
    }

    /// Stores an `f32` slice as raw bit patterns (NaN payloads, `-0.0`, and
    /// subnormals survive exactly).
    pub fn put_f32s(&mut self, name: &str, vs: &[f32]) {
        let mut out = Vec::with_capacity(vs.len() * 4);
        for v in vs {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.put(name, out);
    }

    /// Reads an `f32` slice stored by [`Snapshot::put_f32s`].
    pub fn get_f32s(&self, name: &str) -> Result<Vec<f32>, CkptError> {
        Ok(self.get_u32s(name)?.into_iter().map(f32::from_bits).collect())
    }

    /// Stores a UTF-8 string.
    pub fn put_str(&mut self, name: &str, s: &str) {
        self.put(name, s.as_bytes().to_vec());
    }

    /// Reads a UTF-8 string.
    pub fn get_str(&self, name: &str) -> Result<String, CkptError> {
        String::from_utf8(self.get(name)?.to_vec())
            .map_err(|_| malformed(name, "payload is not UTF-8"))
    }

    /// Stores a matrix: `rows` and `cols` as u64 LE, then the row-major
    /// `f32` data as raw bit patterns.
    pub fn put_matrix(&mut self, name: &str, m: &Matrix) {
        self.put(name, encode_matrix(m));
    }

    /// Reads a matrix stored by [`Snapshot::put_matrix`].
    pub fn get_matrix(&self, name: &str) -> Result<Matrix, CkptError> {
        let b = self.get(name)?;
        let (m, rest) = decode_matrix(b, name)?;
        if !rest.is_empty() {
            return Err(malformed(name, "trailing bytes after matrix"));
        }
        Ok(m)
    }

    /// Stores a list of matrices (u64 count, then each matrix).
    pub fn put_matrices(&mut self, name: &str, ms: &[Matrix]) {
        let mut out = (ms.len() as u64).to_le_bytes().to_vec();
        for m in ms {
            out.extend_from_slice(&encode_matrix(m));
        }
        self.put(name, out);
    }

    /// Reads a list of matrices stored by [`Snapshot::put_matrices`].
    pub fn get_matrices(&self, name: &str) -> Result<Vec<Matrix>, CkptError> {
        let b = self.get(name)?;
        if b.len() < 8 {
            return Err(malformed(name, "missing matrix count"));
        }
        // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
        let count = u64::from_le_bytes(b[..8].try_into().expect("length checked by caller")) as usize;
        let mut rest = &b[8..];
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let (m, r) = decode_matrix(rest, name)?;
            out.push(m);
            rest = r;
        }
        if !rest.is_empty() {
            return Err(malformed(name, "trailing bytes after matrix list"));
        }
        Ok(out)
    }

    // -- wire format --------------------------------------------------------

    /// Serializes header + section table to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        out
    }

    /// Parses bytes produced by [`Snapshot::encode`], verifying the magic,
    /// version, and every section CRC.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(8)? != MAGIC.as_slice() {
            return Err(CkptError::BadMagic);
        }
        // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
        let version = u32::from_le_bytes(cur.take(4)?.try_into().expect("length checked by caller"));
        if version != VERSION {
            return Err(CkptError::BadVersion(version));
        }
        // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
        let count = u32::from_le_bytes(cur.take(4)?.try_into().expect("length checked by caller"));
        let mut sections = BTreeMap::new();
        for _ in 0..count {
            // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
            let name_len = u16::from_le_bytes(cur.take(2)?.try_into().expect("length checked by caller")) as usize;
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| malformed("<header>", "section name is not UTF-8"))?
                .to_string();
            // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
            let payload_len = u64::from_le_bytes(cur.take(8)?.try_into().expect("length checked by caller")) as usize;
            let payload = cur.take(payload_len)?.to_vec();
            // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
            let stored = u32::from_le_bytes(cur.take(4)?.try_into().expect("length checked by caller"));
            if crc32(&payload) != stored {
                return Err(CkptError::Crc { section: name });
            }
            sections.insert(name, payload);
        }
        if cur.pos != bytes.len() {
            return Err(malformed("<trailer>", "trailing bytes after last section"));
        }
        Ok(Self { sections })
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a `.tmp`
    /// sibling first (flushed and fsynced), which is then renamed over the
    /// final name. A crash mid-write can leave a stale `.tmp` around but
    /// never a half-written snapshot under the final name.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CkptError> {
        let tmp = path.with_extension("bin.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and parses a snapshot file.
    pub fn read(path: &Path) -> Result<Self, CkptError> {
        Self::decode(&std::fs::read(path)?)
    }
}

fn malformed(section: &str, reason: &'static str) -> CkptError {
    CkptError::Malformed { section: section.to_string(), reason }
}

fn encode_matrix(m: &Matrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + m.len() * 4);
    out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for v in m.data() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

fn decode_matrix<'a>(b: &'a [u8], name: &str) -> Result<(Matrix, &'a [u8]), CkptError> {
    if b.len() < 16 {
        return Err(malformed(name, "matrix header truncated"));
    }
    // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
    let rows = u64::from_le_bytes(b[..8].try_into().expect("length checked by caller")) as usize;
    // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
    let cols = u64::from_le_bytes(b[8..16].try_into().expect("length checked by caller")) as usize;
    let n = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or_else(|| malformed(name, "matrix dimensions overflow"))?;
    let rest = &b[16..];
    if rest.len() < n {
        return Err(malformed(name, "matrix data truncated"));
    }
    let data: Vec<f32> = rest[..n]
        .chunks_exact(4)
        // analyze:allow(panic, infallible: slice length fixed by the preceding bounds check)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("length checked by caller"))))
        .collect();
    Ok((Matrix::from_vec(rows, cols, data), &rest[n..]))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.bytes.len() {
            return Err(CkptError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.put_u64("epoch", 42);
        s.put_f64("best_val", -0.0);
        s.put_u64s("rng", &[1, 2, 3, u64::MAX]);
        s.put_u32s("clusters", &[0, 7, 3]);
        s.put_f32s("trace", &[f32::NAN, -0.0, 1.5e-45, 3.2]);
        s.put_str("kind", "search");
        s.put_matrix("alpha", &Matrix::from_rows(&[&[0.25, -0.0], &[f32::INFINITY, 2.0]]));
        s.put_matrices(
            "omega",
            &[Matrix::zeros(2, 3), Matrix::from_vec(1, 1, vec![f32::MIN_POSITIVE])],
        );
        s
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let s = sample();
        let back = Snapshot::decode(&s.encode()).unwrap();
        assert_eq!(back.get_u64("epoch").unwrap(), 42);
        assert_eq!(back.get_f64("best_val").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.get_u64s("rng").unwrap(), vec![1, 2, 3, u64::MAX]);
        assert_eq!(back.get_u32s("clusters").unwrap(), vec![0, 7, 3]);
        let trace = back.get_f32s("trace").unwrap();
        assert!(trace[0].is_nan());
        assert_eq!(trace[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(trace[2].to_bits(), 1.5e-45f32.to_bits());
        assert_eq!(back.get_str("kind").unwrap(), "search");
        let alpha = back.get_matrix("alpha").unwrap();
        assert_eq!(alpha.shape(), (2, 2));
        assert_eq!(alpha.get(1, 0), f32::INFINITY);
        assert_eq!(alpha.get(0, 1).to_bits(), (-0.0f32).to_bits());
        let omega = back.get_matrices("omega").unwrap();
        assert_eq!(omega.len(), 2);
        assert_eq!(omega[0].shape(), (2, 3));
        assert_eq!(omega[1].get(0, 0), f32::MIN_POSITIVE);
    }

    #[test]
    fn corruption_is_detected_per_section() {
        let bytes = sample().encode();
        // Flip one bit in every byte position past the header; decoding must
        // never silently succeed with different content.
        let mut undetected = 0;
        for i in 16..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match Snapshot::decode(&bad) {
                Err(_) => {}
                Ok(s) => {
                    // Flips confined to a section *name* byte can still parse
                    // if the mutated name is valid UTF-8 — but then the
                    // expected section is missing, which lookups catch.
                    if s.get_u64("epoch").map_or(false, |v| v == 42)
                        && s.contains("alpha")
                        && s.contains("omega")
                        && s.contains("rng")
                        && s.contains("clusters")
                        && s.contains("trace")
                        && s.contains("kind")
                        && s.contains("best_val")
                    {
                        undetected += 1;
                    }
                }
            }
        }
        assert_eq!(undetected, 0, "{undetected} corrupted variants decoded cleanly");
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [1, 9, 13, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn rejects_foreign_files() {
        assert!(matches!(Snapshot::decode(b"not a checkpoint"), Err(CkptError::BadMagic)));
        let mut versioned = MAGIC.to_vec();
        versioned.extend_from_slice(&99u32.to_le_bytes());
        versioned.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(Snapshot::decode(&versioned), Err(CkptError::BadVersion(99))));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("autoac-ckpt-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        sample().write_atomic(&path).unwrap();
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back.get_u64("epoch").unwrap(), 42);
        assert!(
            !path.with_extension("bin.tmp").exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
