//! # autoac-completion
//!
//! The attribute-completion operation search space of AutoAC (paper §IV-A):
//! four completion operations (mean / GCN / PPNP / one-hot), precomputed
//! graph operators, and the two assembly modes the search alternates
//! between — weighted mixture (continuous relaxation, Eq. 5) and discrete
//! per-node assignment (Algorithm 1's lower-level step).

#![warn(missing_docs)]

mod module;
mod ops;

pub use module::{
    complete_assigned, complete_assigned_in, complete_mixture, complete_mixture_in,
    complete_single, restrict_rows, Transform,
};
pub use ops::{CompletionContext, CompletionOp, CompletionOps};
