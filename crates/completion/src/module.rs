//! Completion assembly: mixture (continuous relaxation, Eq. 5) and
//! discrete-assignment completion, plus small shared helpers.

use autoac_tensor::{Csr, Tensor};
use rand::Rng;

use crate::ops::{CompletionOp, CompletionOps};

/// Square trainable transform (the paper's per-op `W`).
pub struct Transform {
    /// `(d, d)` weight.
    pub w: Tensor,
}

impl Transform {
    /// Xavier-initialized square transform.
    pub fn new(dim: usize, rng: &mut impl Rng) -> Self {
        Self { w: Tensor::param(autoac_tensor::init::xavier_uniform(dim, dim, rng)) }
    }

    /// Applies the transform.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w)
    }
}

/// Returns a copy of `csr` with only the given rows kept (others emptied).
pub fn restrict_rows(csr: &Csr, rows: &[u32]) -> Csr {
    csr.restrict_rows(rows)
}

/// Completes the zero rows of `x0` with a *weighted mixture* of all ops
/// (Eq. 5 after softmax/discretization has produced `weights`).
///
/// `weights` is `(N⁻, |O|)`; gradients flow into the weights, every op's
/// parameters, and `x0`.
pub fn complete_mixture(ops: &CompletionOps, x0: &Tensor, weights: &Tensor) -> Tensor {
    let ctx = ops.ctx();
    assert_eq!(
        weights.shape(),
        (ctx.num_missing(), CompletionOp::ALL.len()),
        "complete_mixture: weight shape mismatch"
    );
    if ctx.num_missing() == 0 {
        return x0.clone();
    }
    let outputs = ops.all_op_outputs(x0);
    let mut completed: Option<Tensor> = None;
    for (o, out) in outputs.iter().enumerate() {
        let w = weights.slice_cols(o, 1); // (N⁻, 1)
        let term = out.mul_col_vec(&w);
        completed = Some(match completed {
            Some(acc) => acc.add(&term),
            None => term,
        });
    }
    let completed = completed.expect("|O| > 0");
    x0.add(&completed.scatter_add_rows(&ctx.missing, ctx.num_nodes))
}

/// Completes the zero rows of `x0` with one discrete op per `V⁻` node
/// (the lower-level optimization of Algorithm 1: only *activated* ops are
/// evaluated — ops assigned to no node cost nothing).
pub fn complete_assigned(ops: &CompletionOps, x0: &Tensor, assignment: &[CompletionOp]) -> Tensor {
    let ctx = ops.ctx();
    assert_eq!(
        assignment.len(),
        ctx.num_missing(),
        "complete_assigned: assignment length mismatch"
    );
    if ctx.num_missing() == 0 {
        return x0.clone();
    }
    let mut result = x0.clone();
    for &op in &CompletionOp::ALL {
        // Positions (within the missing list) assigned to this op.
        let positions: Vec<u32> = assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == op).then_some(i as u32))
            .collect();
        if positions.is_empty() {
            continue;
        }
        let out = ops.op_output(op, x0); // (N⁻, d)
        let rows = out.gather_rows(&positions);
        let globals: Vec<u32> = positions.iter().map(|&p| ctx.missing[p as usize]).collect();
        result = result.add(&rows.scatter_add_rows(&globals, ctx.num_nodes));
    }
    result
}

/// Completes with a single op for every `V⁻` node (the Table VI/VII
/// single-operation baselines).
pub fn complete_single(ops: &CompletionOps, x0: &Tensor, op: CompletionOp) -> Tensor {
    let n = ops.ctx().num_missing();
    complete_assigned(ops, x0, &vec![op; n])
}

/// [`complete_mixture`] against an external (subgraph) context: `ctx` and
/// `x0` live in the subgraph's id space, `weights` is
/// `(ctx.num_missing(), |O|)`, and `onehot_rows` maps each missing node to
/// its row in the global one-hot table (see
/// [`CompletionOps::op_output_in`]).
pub fn complete_mixture_in(
    ops: &CompletionOps,
    ctx: &crate::ops::CompletionContext,
    onehot_rows: &[u32],
    x0: &Tensor,
    weights: &Tensor,
) -> Tensor {
    assert_eq!(
        weights.shape(),
        (ctx.num_missing(), CompletionOp::ALL.len()),
        "complete_mixture_in: weight shape mismatch"
    );
    if ctx.num_missing() == 0 {
        return x0.clone();
    }
    let outputs = ops.all_op_outputs_in(ctx, onehot_rows, x0);
    let mut completed: Option<Tensor> = None;
    for (o, out) in outputs.iter().enumerate() {
        let w = weights.slice_cols(o, 1); // (n⁻_sub, 1)
        let term = out.mul_col_vec(&w);
        completed = Some(match completed {
            Some(acc) => acc.add(&term),
            None => term,
        });
    }
    let completed = completed.expect("|O| > 0");
    x0.add(&completed.scatter_add_rows(&ctx.missing, ctx.num_nodes))
}

/// [`complete_assigned`] against an external (subgraph) context; see
/// [`complete_mixture_in`] for the id-space conventions.
pub fn complete_assigned_in(
    ops: &CompletionOps,
    ctx: &crate::ops::CompletionContext,
    onehot_rows: &[u32],
    x0: &Tensor,
    assignment: &[CompletionOp],
) -> Tensor {
    assert_eq!(
        assignment.len(),
        ctx.num_missing(),
        "complete_assigned_in: assignment length mismatch"
    );
    if ctx.num_missing() == 0 {
        return x0.clone();
    }
    let mut result = x0.clone();
    for &op in &CompletionOp::ALL {
        let positions: Vec<u32> = assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == op).then_some(i as u32))
            .collect();
        if positions.is_empty() {
            continue;
        }
        let out = ops.op_output_in(ctx, onehot_rows, op, x0); // (n⁻_sub, d)
        let rows = out.gather_rows(&positions);
        let globals: Vec<u32> = positions.iter().map(|&p| ctx.missing[p as usize]).collect();
        result = result.add(&rows.scatter_add_rows(&globals, ctx.num_nodes));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CompletionContext;
    use autoac_graph::HeteroGraph;
    use autoac_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CompletionOps, Tensor) {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 3);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.add_edge(e, 2, 4);
        let g = b.build();
        let has = vec![true, true, true, false, false];
        let ctx = CompletionContext::build(&g, &has);
        let mut rng = StdRng::seed_from_u64(0);
        let ops = CompletionOps::new(ctx, 3, &mut rng);
        let x0 = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[3.0, 2.0, 0.0],
            &[5.0, 5.0, 1.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]));
        (ops, x0)
    }

    #[test]
    fn mixture_preserves_attributed_rows() {
        let (ops, x0) = setup();
        let w = Tensor::constant(Matrix::full(2, 4, 0.25));
        let out = complete_mixture(&ops, &x0, &w);
        let v = out.to_matrix();
        let x = x0.to_matrix();
        for r in 0..3 {
            assert_eq!(v.row(r), x.row(r), "attributed row {r} must be unchanged");
        }
        // Missing rows are filled.
        assert!(v.row(3).iter().any(|&z| z != 0.0));
    }

    #[test]
    fn one_hot_mixture_equals_assignment() {
        let (ops, x0) = setup();
        // Node 3 → Mean (col 0), node 4 → OneHot (col 3).
        let w = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]));
        let via_mixture = complete_mixture(&ops, &x0, &w).to_matrix();
        let via_assign =
            complete_assigned(&ops, &x0, &[CompletionOp::Mean, CompletionOp::OneHot]).to_matrix();
        for (a, b) in via_mixture.data().iter().zip(via_assign.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn single_op_completion_matches_uniform_assignment() {
        let (ops, x0) = setup();
        let single = complete_single(&ops, &x0, CompletionOp::Gcn).to_matrix();
        let assigned =
            complete_assigned(&ops, &x0, &[CompletionOp::Gcn, CompletionOp::Gcn]).to_matrix();
        assert_eq!(single, assigned);
    }

    #[test]
    fn mixture_weights_receive_gradients() {
        let (ops, x0) = setup();
        let w = Tensor::param(Matrix::full(2, 4, 0.25));
        complete_mixture(&ops, &x0, &w).square().sum().backward();
        let g = w.grad().expect("weights must get a gradient");
        assert!(g.frob() > 0.0);
    }

    #[test]
    fn assigned_only_touches_used_op_params() {
        let (ops, x0) = setup();
        let out = complete_assigned(&ops, &x0, &[CompletionOp::Mean, CompletionOp::Mean]);
        out.square().sum().backward();
        assert!(
            ops.op_params(CompletionOp::Mean)[0].grad().is_some(),
            "used op must get grads"
        );
        assert!(
            ops.op_params(CompletionOp::Ppnp)[0].grad().is_none(),
            "unused op must not be evaluated"
        );
        assert!(ops.op_params(CompletionOp::OneHot)[0].grad().is_none());
    }

    #[test]
    fn restrict_rows_empties_other_rows() {
        let csr = Csr::from_coo(3, 3, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]);
        let r = restrict_rows(&csr, &[1]);
        assert_eq!(r.row_nnz(0), 0);
        assert_eq!(r.row_nnz(1), 1);
        assert_eq!(r.row_nnz(2), 0);
    }

    #[test]
    fn external_ctx_on_whole_graph_matches_legacy() {
        let (ops, x0) = setup();
        let identity: Vec<u32> = (0..ops.ctx().num_missing() as u32).collect();
        let assignment = [CompletionOp::Mean, CompletionOp::OneHot];
        let legacy = complete_assigned(&ops, &x0, &assignment).to_matrix();
        let external =
            complete_assigned_in(&ops, ops.ctx(), &identity, &x0, &assignment).to_matrix();
        assert_eq!(legacy, external);
        let w = Tensor::constant(Matrix::full(2, 4, 0.25));
        let legacy_mix = complete_mixture(&ops, &x0, &w).to_matrix();
        let external_mix = complete_mixture_in(&ops, ops.ctx(), &identity, &x0, &w).to_matrix();
        assert_eq!(legacy_mix, external_mix);
    }

    #[test]
    fn subgraph_mean_rows_of_core_nodes_are_exact() {
        // Full graph: movies 0-2 attributed, actors 3-4 missing. The shard
        // that owns actor 3 with its full 1-hop halo is {0, 1, 3}; the mean
        // row of actor 3 computed on that subgraph must be bitwise the row
        // computed on the whole graph.
        let (ops, x0) = setup();
        let full = complete_assigned(&ops, &x0, &[CompletionOp::Mean, CompletionOp::Mean])
            .to_matrix();

        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 2); // movies 0, 1 (global 0, 1)
        let a = b.add_node_type("a", 1); // actor 2 (global 3)
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 2);
        b.add_edge(e, 1, 2);
        let sub = b.build();
        let sub_ctx = CompletionContext::build(&sub, &[true, true, false]);
        let sub_x0 = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[3.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]));
        // Actor 3 is row 0 of the global one-hot table.
        let out =
            complete_assigned_in(&ops, &sub_ctx, &[0], &sub_x0, &[CompletionOp::Mean]).to_matrix();
        let got: Vec<u32> = out.row(2).iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = full.row(3).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "core mean row must be exact under core+halo sharding");
    }

    #[test]
    fn external_onehot_rows_route_gradients_to_sampled_rows() {
        let (ops, x0) = setup();
        // Sample only the second missing node (global one-hot row 1).
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 1); // movie 2 (global 2)
        let a = b.add_node_type("a", 1); // actor 4 (global 4)
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 1);
        let sub = b.build();
        let sub_ctx = CompletionContext::build(&sub, &[true, false]);
        let sub_x0 = Tensor::constant(x0.to_matrix().gather_rows(&[2, 4]));
        let out = complete_assigned_in(&ops, &sub_ctx, &[1], &sub_x0, &[CompletionOp::OneHot]);
        out.square().sum().backward();
        let g = ops.op_params(CompletionOp::OneHot)[0].grad().expect("onehot grad");
        assert!(g.row(1).iter().any(|&v| v != 0.0), "sampled row must get a gradient");
        assert!(g.row(0).iter().all(|&v| v == 0.0), "unsampled row must stay zero");
    }

    #[test]
    fn empty_missing_set_is_identity() {
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 2);
        let e = b.add_edge_type("m-m", m, m);
        b.add_edge(e, 0, 1);
        let g = b.build();
        let ctx = CompletionContext::build(&g, &[true, true]);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = CompletionOps::new(ctx, 2, &mut rng);
        let x0 = Tensor::constant(Matrix::ones(2, 2));
        let w = Tensor::constant(Matrix::zeros(0, 4));
        let out = complete_mixture(&ops, &x0, &w);
        assert_eq!(out.to_matrix(), x0.to_matrix());
        let out2 = complete_assigned(&ops, &x0, &[]);
        assert_eq!(out2.to_matrix(), x0.to_matrix());
    }
}
