//! The attribute-completion operation search space `O` (paper §IV-A):
//! topology-dependent mean / GCN / PPNP aggregation and topology-independent
//! one-hot completion. `|O| = 4`.

use std::fmt;
use std::rc::Rc;

use autoac_graph::cache::NormOp;
use autoac_graph::{ppr, HeteroGraph, OpCache};
use autoac_tensor::{spmm, Csr, Tensor};
use rand::rngs::StdRng;

/// One completion operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompletionOp {
    /// Mean of attributed 1-hop neighbors (Eq. 2, GraphSage-style).
    Mean,
    /// Degree-normalized sum of attributed 1-hop neighbors (Eq. 3).
    Gcn,
    /// Personalized-PageRank propagation over the whole graph (Eq. 4).
    Ppnp,
    /// One-hot identity (topology-independent), linearly transformed.
    OneHot,
}

impl CompletionOp {
    /// The full search space, in the paper's order.
    pub const ALL: [CompletionOp; 4] =
        [CompletionOp::Mean, CompletionOp::Gcn, CompletionOp::Ppnp, CompletionOp::OneHot];

    /// Index of the op within [`CompletionOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            CompletionOp::Mean => 0,
            CompletionOp::Gcn => 1,
            CompletionOp::Ppnp => 2,
            CompletionOp::OneHot => 3,
        }
    }

    /// Inverse of [`CompletionOp::index`].
    pub fn from_index(i: usize) -> CompletionOp {
        Self::ALL[i]
    }

    /// Short name matching the paper's ablation tables.
    pub fn name(self) -> &'static str {
        match self {
            CompletionOp::Mean => "MEAN_AC",
            CompletionOp::Gcn => "GCN_AC",
            CompletionOp::Ppnp => "PPNP_AC",
            CompletionOp::OneHot => "One-hot_AC",
        }
    }
}

impl fmt::Display for CompletionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Precomputed graph operators shared by the completion module.
pub struct CompletionContext {
    /// Mean aggregation over attributed neighbors, rows restricted to `V⁻`.
    pub mean_agg: Rc<Csr>,
    /// Its transpose (for autograd).
    pub mean_agg_t: Rc<Csr>,
    /// GCN aggregation over attributed neighbors, rows restricted to `V⁻`.
    pub gcn_agg: Rc<Csr>,
    /// Its transpose.
    pub gcn_agg_t: Rc<Csr>,
    /// Symmetric normalized adjacency with self-loops (PPNP propagation).
    pub sym_adj: Rc<Csr>,
    /// Global ids of `V⁻`, sorted ascending.
    pub missing: Vec<u32>,
    /// Total node count.
    pub num_nodes: usize,
}

impl CompletionContext {
    /// Builds all operators for a graph and attribute mask.
    pub fn build(graph: &HeteroGraph, has_attr: &[bool]) -> Self {
        Self::build_cached(graph, has_attr, &OpCache::new(graph))
    }

    /// Like [`CompletionContext::build`], but fetches every operator through
    /// a shared [`OpCache`] so repeated pipeline construction over the same
    /// graph (search stage, retraining stage, multiple seeds) reuses the
    /// CSR matrices instead of rebuilding them.
    pub fn build_cached(graph: &HeteroGraph, has_attr: &[bool], cache: &OpCache) -> Self {
        let missing: Vec<u32> = has_attr
            .iter()
            .enumerate()
            .filter_map(|(v, &h)| (!h).then_some(v as u32))
            .collect();
        // Completion only ever reads V⁻ rows of the local aggregators;
        // restricting them up-front makes each spmm O(edges incident to V⁻).
        let mask = Some(has_attr);
        let rows = Some(&missing[..]);
        Self {
            mean_agg: cache.get(graph, NormOp::MeanAttr, mask, rows, false),
            mean_agg_t: cache.get(graph, NormOp::MeanAttr, mask, rows, true),
            gcn_agg: cache.get(graph, NormOp::GcnAttr, mask, rows, false),
            gcn_agg_t: cache.get(graph, NormOp::GcnAttr, mask, rows, true),
            sym_adj: cache.sym_norm_adj(graph),
            missing,
            num_nodes: graph.num_nodes(),
        }
    }

    /// Number of no-attribute nodes `N⁻`.
    pub fn num_missing(&self) -> usize {
        self.missing.len()
    }
}

/// Trainable parameters of the four ops plus the kernels that evaluate each
/// op's completed attributes for every `V⁻` node.
pub struct CompletionOps {
    ctx: CompletionContext,
    w_mean: crate::module::Transform,
    w_gcn: crate::module::Transform,
    w_ppnp: crate::module::Transform,
    onehot: Tensor,
    /// PPNP restart probability (Eq. 4's α).
    pub ppnp_alpha: f32,
    /// PPNP power-iteration steps.
    pub ppnp_k: usize,
}

impl CompletionOps {
    /// Creates the op parameters over an embedding dimension `dim`.
    pub fn new(ctx: CompletionContext, dim: usize, rng: &mut StdRng) -> Self {
        let onehot = Tensor::param(autoac_tensor::init::random_normal(
            ctx.num_missing().max(1),
            dim,
            0.1,
            rng,
        ));
        Self {
            w_mean: crate::module::Transform::new(dim, rng),
            w_gcn: crate::module::Transform::new(dim, rng),
            w_ppnp: crate::module::Transform::new(dim, rng),
            onehot,
            ctx,
            ppnp_alpha: 0.15,
            ppnp_k: 8,
        }
    }

    /// The shared graph-operator context.
    pub fn ctx(&self) -> &CompletionContext {
        &self.ctx
    }

    /// Evaluates one op for all `V⁻` nodes: returns `(N⁻, d)`.
    ///
    /// `x0` is the `(N, d)` projected attribute block with zero rows at
    /// missing nodes.
    pub fn op_output(&self, op: CompletionOp, x0: &Tensor) -> Tensor {
        match op {
            CompletionOp::Mean => self
                .w_mean
                .forward(&spmm(&self.ctx.mean_agg, &self.ctx.mean_agg_t, x0))
                .gather_rows(&self.ctx.missing),
            CompletionOp::Gcn => self
                .w_gcn
                .forward(&spmm(&self.ctx.gcn_agg, &self.ctx.gcn_agg_t, x0))
                .gather_rows(&self.ctx.missing),
            CompletionOp::Ppnp => {
                let propagated = ppr::ppnp_propagate(
                    &self.ctx.sym_adj,
                    &self.w_ppnp.forward(x0),
                    self.ppnp_alpha,
                    self.ppnp_k,
                );
                propagated.gather_rows(&self.ctx.missing)
            }
            CompletionOp::OneHot => self.onehot.clone(),
        }
    }

    /// All four op outputs in [`CompletionOp::ALL`] order.
    pub fn all_op_outputs(&self, x0: &Tensor) -> Vec<Tensor> {
        CompletionOp::ALL.iter().map(|&op| self.op_output(op, x0)).collect()
    }

    /// Evaluates one op against an *external* context — the minibatch path
    /// builds a [`CompletionContext`] over a sampled subgraph and reuses
    /// this instance's trainable parameters on it.
    ///
    /// `ctx` indexes nodes in its own (subgraph-local) id space; `x0` is the
    /// `(n_sub, d)` projected block of the subgraph. `onehot_rows[i]` maps
    /// the `i`-th missing node of `ctx` to its row in this instance's global
    /// one-hot table, so one-hot completion stays per-node and
    /// differentiable (gradients land on exactly the sampled rows).
    pub fn op_output_in(
        &self,
        ctx: &CompletionContext,
        onehot_rows: &[u32],
        op: CompletionOp,
        x0: &Tensor,
    ) -> Tensor {
        assert_eq!(
            onehot_rows.len(),
            ctx.num_missing(),
            "op_output_in: onehot_rows must map every missing node of the context"
        );
        match op {
            CompletionOp::Mean => self
                .w_mean
                .forward(&spmm(&ctx.mean_agg, &ctx.mean_agg_t, x0))
                .gather_rows(&ctx.missing),
            CompletionOp::Gcn => self
                .w_gcn
                .forward(&spmm(&ctx.gcn_agg, &ctx.gcn_agg_t, x0))
                .gather_rows(&ctx.missing),
            CompletionOp::Ppnp => ppr::ppnp_propagate(
                &ctx.sym_adj,
                &self.w_ppnp.forward(x0),
                self.ppnp_alpha,
                self.ppnp_k,
            )
            .gather_rows(&ctx.missing),
            CompletionOp::OneHot => self.onehot.gather_rows(onehot_rows),
        }
    }

    /// All four op outputs against an external context, in
    /// [`CompletionOp::ALL`] order.
    pub fn all_op_outputs_in(
        &self,
        ctx: &CompletionContext,
        onehot_rows: &[u32],
        x0: &Tensor,
    ) -> Vec<Tensor> {
        CompletionOp::ALL
            .iter()
            .map(|&op| self.op_output_in(ctx, onehot_rows, op, x0))
            .collect()
    }

    /// Trainable parameters of every op.
    pub fn params(&self) -> Vec<Tensor> {
        vec![
            self.w_mean.w.clone(),
            self.w_gcn.w.clone(),
            self.w_ppnp.w.clone(),
            self.onehot.clone(),
        ]
    }

    /// Parameters of a single op (used to freeze unused ops in discrete
    /// mode).
    pub fn op_params(&self, op: CompletionOp) -> Vec<Tensor> {
        match op {
            CompletionOp::Mean => vec![self.w_mean.w.clone()],
            CompletionOp::Gcn => vec![self.w_gcn.w.clone()],
            CompletionOp::Ppnp => vec![self.w_ppnp.w.clone()],
            CompletionOp::OneHot => vec![self.onehot.clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_tensor::Matrix;
    use rand::SeedableRng;

    fn toy() -> (HeteroGraph, Vec<bool>) {
        // movies 0-2 attributed; actors 3-4 missing.
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 3);
        let a = b.add_node_type("a", 2);
        let e = b.add_edge_type("m-a", m, a);
        b.add_edge(e, 0, 3);
        b.add_edge(e, 1, 3);
        b.add_edge(e, 2, 4);
        let g = b.build();
        let has = vec![true, true, true, false, false];
        (g, has)
    }

    #[test]
    fn op_enum_roundtrip() {
        for (i, op) in CompletionOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(CompletionOp::from_index(i), *op);
        }
        assert_eq!(CompletionOp::Mean.to_string(), "MEAN_AC");
    }

    #[test]
    fn context_identifies_missing_nodes() {
        let (g, has) = toy();
        let ctx = CompletionContext::build(&g, &has);
        assert_eq!(ctx.missing, vec![3, 4]);
        assert_eq!(ctx.num_missing(), 2);
        // Restricted aggregators have rows only at missing ids.
        assert_eq!(ctx.mean_agg.row_nnz(0), 0);
        assert!(ctx.mean_agg.row_nnz(3) > 0);
    }

    #[test]
    fn mean_op_averages_attributed_neighbors() {
        let (g, has) = toy();
        let ctx = CompletionContext::build(&g, &has);
        let mut rng = StdRng::seed_from_u64(0);
        let ops = CompletionOps::new(ctx, 2, &mut rng);
        // Identity transform to observe the raw aggregation.
        ops.w_mean.w.set_value(Matrix::eye(2));
        let x0 = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[3.0, 2.0],
            &[5.0, 5.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
        ]));
        let out = ops.op_output(CompletionOp::Mean, &x0).to_matrix();
        // Node 3's attributed neighbors: movies 0, 1 → mean (2, 1).
        assert_eq!(out.row(0), &[2.0, 1.0]);
        // Node 4: movie 2 only.
        assert_eq!(out.row(1), &[5.0, 5.0]);
    }

    #[test]
    fn all_ops_produce_missing_shaped_outputs() {
        let (g, has) = toy();
        let ctx = CompletionContext::build(&g, &has);
        let mut rng = StdRng::seed_from_u64(1);
        let ops = CompletionOps::new(ctx, 4, &mut rng);
        let x0 = Tensor::constant(Matrix::ones(5, 4));
        for out in ops.all_op_outputs(&x0) {
            assert_eq!(out.shape(), (2, 4));
        }
        assert_eq!(ops.params().len(), 4);
    }

    #[test]
    fn onehot_is_topology_independent() {
        let (g, has) = toy();
        let ctx = CompletionContext::build(&g, &has);
        let mut rng = StdRng::seed_from_u64(2);
        let ops = CompletionOps::new(ctx, 4, &mut rng);
        let a = ops.op_output(CompletionOp::OneHot, &Tensor::constant(Matrix::ones(5, 4)));
        let b = ops.op_output(CompletionOp::OneHot, &Tensor::constant(Matrix::zeros(5, 4)));
        assert_eq!(a.to_matrix(), b.to_matrix());
    }

    #[test]
    fn ppnp_reaches_multi_hop_signal() {
        // Chain: movie0 — actor2 — movie1(?): build a graph where actor 3's
        // only neighbor is unattributed, so mean/GCN see nothing but PPNP
        // does.
        let mut b = HeteroGraph::builder();
        let m = b.add_node_type("m", 1);
        let a = b.add_node_type("a", 2); // 1, 2; node 2's neighbor is node 1
        let e1 = b.add_edge_type("m-a", m, a);
        let e2 = b.add_edge_type("a-a", a, a);
        b.add_edge(e1, 0, 1);
        b.add_edge(e2, 1, 2);
        let g = b.build();
        let has = vec![true, false, false];
        let ctx = CompletionContext::build(&g, &has);
        let mut rng = StdRng::seed_from_u64(3);
        let ops = CompletionOps::new(ctx, 1, &mut rng);
        ops.w_mean.w.set_value(Matrix::eye(1));
        ops.w_ppnp.w.set_value(Matrix::eye(1));
        let x0 = Tensor::constant(Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]));
        let mean = ops.op_output(CompletionOp::Mean, &x0).to_matrix();
        let ppnp = ops.op_output(CompletionOp::Ppnp, &x0).to_matrix();
        // Node 2 (second missing row): no attributed 1-hop neighbor.
        assert_eq!(mean.get(1, 0), 0.0);
        assert!(ppnp.get(1, 0) > 0.0, "PPNP must reach 2-hop signal");
    }

    #[test]
    fn gradients_flow_into_op_params() {
        let (g, has) = toy();
        let ctx = CompletionContext::build(&g, &has);
        let mut rng = StdRng::seed_from_u64(4);
        let ops = CompletionOps::new(ctx, 3, &mut rng);
        let x0 = Tensor::constant(Matrix::ones(5, 3));
        let outs = ops.all_op_outputs(&x0);
        let mut loss = outs[0].sum();
        for o in &outs[1..] {
            loss = loss.add(&o.sum());
        }
        loss.backward();
        for (i, p) in ops.params().iter().enumerate() {
            assert!(p.grad().is_some(), "op param {i} has no grad");
        }
    }
}
