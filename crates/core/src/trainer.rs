//! Generic training loops with early stopping, for node classification and
//! link prediction, over any [`ForwardPipe`].

use std::time::Instant;

use autoac_ckpt::{CheckpointPolicy, Fingerprint, RunMeta, TrainState};
use autoac_data::{Dataset, LinkSplit};
use autoac_eval::{f1_scores, mrr, roc_auc};
use autoac_tensor::{Adam, AdamConfig, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pipeline::ForwardPipe;

/// Optimization settings for the GNN weights ω (paper §V-B: Adam,
/// lr 5e-4, wd 1e-4; our synthetic datasets converge with a slightly larger
/// lr at `small` scale, so the rate is configurable).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Learning rate for ω.
    pub lr: f32,
    /// Weight decay for ω.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 150, patience: 25, lr: 5e-3, weight_decay: 1e-4 }
    }
}

impl TrainConfig {
    /// Fingerprint of the trajectory-shaping fields, recorded in snapshots
    /// so resume against a different optimizer setup fails loudly. `epochs`
    /// is deliberately excluded: it only bounds the horizon, and resuming an
    /// interrupted run with a longer budget is a legitimate use.
    pub fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f32(self.lr)
            .f32(self.weight_decay)
            .u64(self.patience as u64)
            .finish()
    }
}

/// Node-classification outcome.
#[derive(Debug, Clone)]
pub struct ClsOutcome {
    /// Test Macro-F1.
    pub macro_f1: f64,
    /// Test Micro-F1.
    pub micro_f1: f64,
    /// Wall-clock training seconds.
    pub seconds: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
}

impl ClsOutcome {
    /// Seconds per epoch.
    pub fn per_epoch(&self) -> f64 {
        self.seconds / self.epochs_run.max(1) as f64
    }
}

/// Link-prediction outcome.
#[derive(Debug, Clone)]
pub struct LpOutcome {
    /// Test ROC-AUC.
    pub roc_auc: f64,
    /// Test MRR.
    pub mrr: f64,
    /// Wall-clock training seconds.
    pub seconds: f64,
    /// Epochs actually run.
    pub epochs_run: usize,
}

impl LpOutcome {
    /// Seconds per epoch.
    pub fn per_epoch(&self) -> f64 {
        self.seconds / self.epochs_run.max(1) as f64
    }
}

/// Snapshot of parameter values (for best-epoch restoration).
pub fn snapshot(params: &[Tensor]) -> Vec<Matrix> {
    params.iter().map(Tensor::to_matrix).collect()
}

/// Restores a snapshot taken by [`snapshot`].
pub fn restore(params: &[Tensor], snap: &[Matrix]) {
    for (p, m) in params.iter().zip(snap) {
        p.set_value(m.clone());
    }
}

/// Trains a pipeline for node classification and evaluates on the test
/// split. Early stops on validation Micro-F1.
pub fn train_node_classification(
    pipe: &dyn ForwardPipe,
    data: &Dataset,
    cfg: &TrainConfig,
    seed: u64,
) -> ClsOutcome {
    train_node_classification_checkpointed(pipe, data, cfg, seed, None)
}

/// [`train_node_classification`] with optional crash-safe checkpointing:
/// with a policy, the full optimization state (parameters, Adam moments,
/// RNG, early-stopping counters) is snapshotted at epoch boundaries, and a
/// rerun over the same pipeline resumes bit-identically from the latest
/// good snapshot.
pub fn train_node_classification_checkpointed(
    pipe: &dyn ForwardPipe,
    data: &Dataset,
    cfg: &TrainConfig,
    seed: u64,
    policy: Option<&CheckpointPolicy>,
) -> ClsOutcome {
    assert!(data.num_classes > 0, "dataset has no classification task");
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = data.global_labels();
    let params = pipe.params();
    let mut opt = Adam::new(params.clone(), AdamConfig::with(cfg.lr, cfg.weight_decay));
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snap = snapshot(&params);
    let mut bad_epochs = 0;

    let meta = RunMeta {
        kind: "train-cls".into(),
        graph_fp: data.graph.structural_fingerprint(),
        config_fp: cfg.fingerprint(),
        seed,
        segment_fp: 0,
    };
    let mut start_epoch = 0usize;
    let mut elapsed_prior = 0.0f64;
    if let Some(pol) = policy {
        if let Some(state) = resume_train_state(pol, &meta, params.len()) {
            restore(&params, &state.params);
            opt.import_state(state.opt);
            best_val = state.best_val;
            best_snap = state.best_snap;
            bad_epochs = state.bad_epochs as usize;
            rng = StdRng::from_state(state.rng);
            start_epoch = state.epochs_done as usize;
            elapsed_prior = state.elapsed_seconds;
        }
    }

    let start = Instant::now();
    let _obs_train = autoac_obs::span("train");
    let mut epochs_run = start_epoch;
    for epoch in start_epoch..cfg.epochs {
        // The patience check sits at the loop top (rather than breaking
        // right after the counter update) so the stopping epoch itself gets
        // checkpointed; `bad_epochs > 0` keeps the control flow identical
        // even at `patience == 0`, where the original still ran one epoch
        // before its post-increment check could fire.
        if bad_epochs > 0 && bad_epochs >= cfg.patience {
            break;
        }
        let _obs_epoch = autoac_obs::span("epoch");
        epochs_run = epoch + 1;
        opt.zero_grad();
        let fwd = pipe.forward(true, &mut rng);
        let loss = fwd.output.cross_entropy_rows(&labels, &data.split.train);
        autoac_check::tape::verify_backward_if_enabled(&loss);
        if autoac_obs::enabled() {
            // item() re-reads the already-computed scalar; no extra math.
            autoac_obs::series("train_loss", epoch as u64, f64::from(loss.item()));
        }
        loss.backward();
        opt.clip_grad_norm(5.0);
        opt.step();

        let scores = eval_classification(pipe, data, &data.split.val, &mut rng);
        if autoac_obs::enabled() {
            autoac_obs::series("val_micro_f1", epoch as u64, scores.micro_f1);
            autoac_obs::series("val_macro_f1", epoch as u64, scores.macro_f1);
        }
        let val = scores.micro_f1;
        if val > best_val {
            best_val = val;
            best_snap = snapshot(&params);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
        }

        if let Some(pol) = policy {
            if pol.should_checkpoint(epoch + 1) {
                let state = TrainState {
                    meta: meta.clone(),
                    epochs_done: (epoch + 1) as u64,
                    elapsed_seconds: elapsed_prior + start.elapsed().as_secs_f64(),
                    rng: rng.state(),
                    params: snapshot(&params),
                    opt: opt.export_state(),
                    best_val,
                    best_snap: best_snap.clone(),
                    bad_epochs: bad_epochs as u64,
                };
                save_train_snapshot(pol, epoch + 1, &state.to_snapshot());
            }
            pol.throttle();
        }
    }
    drop(_obs_train);
    restore(&params, &best_snap);
    let seconds = elapsed_prior + start.elapsed().as_secs_f64();
    let test = eval_classification(pipe, data, &data.split.test, &mut rng);
    ClsOutcome { macro_f1: test.macro_f1, micro_f1: test.micro_f1, seconds, epochs_run }
}

/// Writes one training snapshot under an obs `ckpt` span, recording the
/// write latency; a failure is counted and warned about (visible in the
/// run summary), never fatal — a failed snapshot must not kill a healthy
/// run.
pub(crate) fn save_train_snapshot(
    pol: &CheckpointPolicy,
    epochs_done: usize,
    snap: &autoac_ckpt::Snapshot,
) {
    let _obs = autoac_obs::span("ckpt");
    let write_start = Instant::now();
    match pol.save(epochs_done, snap) {
        Ok(_) => {
            autoac_obs::hist_record("ckpt_write_ns", write_start.elapsed().as_nanos() as f64);
        }
        Err(e) => {
            autoac_obs::counter_add("ckpt_write_failures", 1);
            autoac_obs::warn("ckpt", &format!("failed to write training snapshot: {e}"));
        }
    }
}

/// Loads and validates the latest training snapshot under `pol`, panicking
/// on identity mismatches (wrong graph/config/seed) and on parameter-count
/// drift; returns `None` when there is nothing to resume from.
pub(crate) fn resume_train_state(
    pol: &CheckpointPolicy,
    expected: &RunMeta,
    n_params: usize,
) -> Option<TrainState> {
    let resumed = pol
        .resume_snapshot()
        .unwrap_or_else(|e| panic!("autoac-ckpt: cannot resume training: {e}"));
    let (_, snap) = resumed?;
    let state = TrainState::from_snapshot(&snap)
        .unwrap_or_else(|e| panic!("autoac-ckpt: invalid training snapshot: {e}"));
    state
        .meta
        .validate(expected)
        .unwrap_or_else(|e| panic!("autoac-ckpt: {e}"));
    assert_eq!(
        state.params.len(),
        n_params,
        "autoac-ckpt: snapshot has a different parameter count"
    );
    Some(state)
}

/// Evaluates classification F1 on a node subset.
pub fn eval_classification(
    pipe: &dyn ForwardPipe,
    data: &Dataset,
    nodes: &[u32],
    rng: &mut StdRng,
) -> autoac_eval::F1Scores {
    autoac_tensor::no_grad(|| {
        let fwd = pipe.forward(false, rng);
        let out = fwd.output.value();
        // Per-row argmax directly on the logits — same tie-breaking as
        // `argmax_predictions` (first maximum wins) without building a flat
        // copy of the selected rows.
        let pred: Vec<u32> =
            nodes.iter().map(|&v| out.argmax_row(v as usize) as u32).collect();
        let truth: Vec<u32> = nodes.iter().map(|&v| data.label_of(v)).collect();
        f1_scores(&pred, &truth, data.num_classes)
    })
}

/// Trains a pipeline for link prediction on a masked split and evaluates
/// ROC-AUC / MRR on the held-out edges. Training positives are the
/// remaining target-type edges; negatives are resampled every epoch.
pub fn train_link_prediction(
    pipe: &dyn ForwardPipe,
    split: &LinkSplit,
    cfg: &TrainConfig,
    seed: u64,
) -> LpOutcome {
    train_link_prediction_checkpointed(pipe, split, cfg, seed, None)
}

/// [`train_link_prediction`] with optional crash-safe checkpointing; see
/// [`train_node_classification_checkpointed`] for the resume semantics. The
/// per-epoch negative samples are not snapshotted: they are a pure function
/// of the RNG state, which is.
pub fn train_link_prediction_checkpointed(
    pipe: &dyn ForwardPipe,
    split: &LinkSplit,
    cfg: &TrainConfig,
    seed: u64,
    policy: Option<&CheckpointPolicy>,
) -> LpOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = &split.train_data;
    let all_pos: Vec<(u32, u32)> = data.graph.edges_of_type(split.edge_type).to_vec();
    assert!(!all_pos.is_empty(), "no training edges left after masking");
    // Hold out 10% of the remaining positives for early stopping.
    let n_val = (all_pos.len() / 10).max(1);
    let val_pos = &all_pos[..n_val];
    let train_pos = &all_pos[n_val..];
    let val_neg =
        autoac_data::sample_train_negatives(data, split.edge_type, val_pos.len(), &mut rng);

    let params = pipe.params();
    let mut opt = Adam::new(params.clone(), AdamConfig::with(cfg.lr, cfg.weight_decay));
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snap = snapshot(&params);
    let mut bad_epochs = 0;

    let meta = RunMeta {
        kind: "train-lp".into(),
        graph_fp: data.graph.structural_fingerprint(),
        config_fp: cfg.fingerprint(),
        seed,
        segment_fp: 0,
    };
    let mut start_epoch = 0usize;
    let mut elapsed_prior = 0.0f64;
    if let Some(pol) = policy {
        if let Some(state) = resume_train_state(pol, &meta, params.len()) {
            restore(&params, &state.params);
            opt.import_state(state.opt);
            best_val = state.best_val;
            best_snap = state.best_snap;
            bad_epochs = state.bad_epochs as usize;
            rng = StdRng::from_state(state.rng);
            start_epoch = state.epochs_done as usize;
            elapsed_prior = state.elapsed_seconds;
        }
    }

    let start = Instant::now();
    let _obs_train = autoac_obs::span("train");
    let mut epochs_run = start_epoch;
    for epoch in start_epoch..cfg.epochs {
        // Same top-of-loop patience check as the classification trainer, so
        // the stopping epoch itself is checkpointable.
        if bad_epochs > 0 && bad_epochs >= cfg.patience {
            break;
        }
        let _obs_epoch = autoac_obs::span("epoch");
        epochs_run = epoch + 1;
        let negs = autoac_data::sample_train_negatives(
            data,
            split.edge_type,
            train_pos.len(),
            &mut rng,
        );
        opt.zero_grad();
        let fwd = pipe.forward(true, &mut rng);
        let loss = autoac_nn::lp::lp_loss(&fwd.output, train_pos, &negs);
        autoac_check::tape::verify_backward_if_enabled(&loss);
        if autoac_obs::enabled() {
            autoac_obs::series("train_loss", epoch as u64, f64::from(loss.item()));
        }
        loss.backward();
        opt.clip_grad_norm(5.0);
        opt.step();

        let val = eval_link_prediction(pipe, val_pos, &val_neg, &mut rng).0;
        if autoac_obs::enabled() {
            autoac_obs::series("val_auc", epoch as u64, val);
        }
        if val > best_val {
            best_val = val;
            best_snap = snapshot(&params);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
        }

        if let Some(pol) = policy {
            if pol.should_checkpoint(epoch + 1) {
                let state = TrainState {
                    meta: meta.clone(),
                    epochs_done: (epoch + 1) as u64,
                    elapsed_seconds: elapsed_prior + start.elapsed().as_secs_f64(),
                    rng: rng.state(),
                    params: snapshot(&params),
                    opt: opt.export_state(),
                    best_val,
                    best_snap: best_snap.clone(),
                    bad_epochs: bad_epochs as u64,
                };
                save_train_snapshot(pol, epoch + 1, &state.to_snapshot());
            }
            pol.throttle();
        }
    }
    drop(_obs_train);
    restore(&params, &best_snap);
    let seconds = elapsed_prior + start.elapsed().as_secs_f64();
    let (auc, m) = eval_link_prediction(pipe, &split.test_pos, &split.test_neg, &mut rng);
    LpOutcome { roc_auc: auc, mrr: m, seconds, epochs_run }
}

/// Evaluates (ROC-AUC, MRR) for positive/negative pair sets.
pub fn eval_link_prediction(
    pipe: &dyn ForwardPipe,
    pos: &[(u32, u32)],
    neg: &[(u32, u32)],
    rng: &mut StdRng,
) -> (f64, f64) {
    autoac_tensor::no_grad(|| {
        let fwd = pipe.forward(false, rng);
        let pos_scores = autoac_nn::lp::score_probs(&fwd.output, pos);
        let neg_scores = autoac_nn::lp::score_probs(&fwd.output, neg);
        let mut scores = pos_scores.clone();
        scores.extend_from_slice(&neg_scores);
        let mut labels = vec![1.0f32; pos_scores.len()];
        labels.extend(std::iter::repeat_n(0.0, neg_scores.len()));
        (roc_auc(&scores, &labels), mrr(&pos_scores, &neg_scores))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Backbone, CompletionMode, Pipeline};
    use autoac_completion::CompletionOp;
    use autoac_data::{mask_edges, presets, synth};
    use autoac_nn::GnnConfig;

    fn tiny(name: &str) -> Dataset {
        synth::generate(&presets::by_name(name).unwrap(), synth::Scale::Tiny, 0)
    }

    #[test]
    fn classification_beats_chance_on_tiny_imdb() {
        let data = tiny("imdb");
        let cfg = GnnConfig {
            in_dim: 32,
            hidden: 32,
            out_dim: data.num_classes,
            layers: 2,
            dropout: 0.3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let pipe = Pipeline::new(
            &data,
            Backbone::Gcn,
            &cfg,
            CompletionMode::Single(CompletionOp::OneHot),
            &mut rng,
        );
        let out = train_node_classification(
            &pipe,
            &data,
            &TrainConfig { epochs: 60, patience: 60, ..Default::default() },
            0,
        );
        let chance = 1.0 / data.num_classes as f64;
        assert!(
            out.micro_f1 > chance + 0.15,
            "micro-f1 {:.3} vs chance {:.3}",
            out.micro_f1,
            chance
        );
        assert!(out.epochs_run <= 60);
        assert!(out.seconds > 0.0);
    }

    #[test]
    fn cached_pipeline_trains_bit_identically_to_uncached() {
        // The operator cache must be invisible to training: pipelines built
        // through a shared cache reuse the Rc<Csr> allocations but compute
        // the exact same numbers.
        let data = tiny("imdb");
        let cfg = GnnConfig {
            in_dim: 16,
            hidden: 16,
            out_dim: data.num_classes,
            layers: 2,
            ..Default::default()
        };
        let tc = TrainConfig { epochs: 5, patience: 5, ..Default::default() };
        let mode = || CompletionMode::Single(CompletionOp::Mean);
        let mut rng = StdRng::seed_from_u64(9);
        let plain = Pipeline::new(&data, Backbone::Gcn, &cfg, mode(), &mut rng);
        let cache = autoac_graph::OpCache::new(&data.graph);
        let mut rng = StdRng::seed_from_u64(9);
        let cached = Pipeline::new_cached(&data, Backbone::Gcn, &cfg, mode(), &cache, &mut rng);
        // Â is requested by both the completion context and the GCN
        // backbone, so even one pipeline produces a cache hit.
        let (hits, _) = cache.stats();
        assert!(hits >= 1, "expected Â to be shared, stats {:?}", cache.stats());
        let a = train_node_classification(&plain, &data, &tc, 7);
        let b = train_node_classification(&cached, &data, &tc, 7);
        assert_eq!(a.macro_f1, b.macro_f1);
        assert_eq!(a.micro_f1, b.micro_f1);
        assert_eq!(a.epochs_run, b.epochs_run);
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let data = tiny("imdb");
        let cfg = GnnConfig {
            in_dim: 8,
            hidden: 8,
            out_dim: data.num_classes,
            layers: 1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let pipe =
            Pipeline::new(&data, Backbone::Gcn, &cfg, CompletionMode::Zero, &mut rng);
        let out = train_node_classification(
            &pipe,
            &data,
            &TrainConfig { epochs: 500, patience: 3, lr: 0.0, ..Default::default() },
            1,
        );
        // With lr 0 validation never improves → stop after patience+1.
        assert!(out.epochs_run <= 5, "ran {} epochs", out.epochs_run);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let p = Tensor::param(Matrix::ones(2, 2));
        let snap = snapshot(std::slice::from_ref(&p));
        p.set_value(Matrix::zeros(2, 2));
        restore(std::slice::from_ref(&p), &snap);
        assert_eq!(p.to_matrix(), Matrix::ones(2, 2));
    }

    #[test]
    fn link_prediction_beats_chance_on_tiny_lastfm() {
        let data = tiny("lastfm");
        let mut rng = StdRng::seed_from_u64(2);
        let split = mask_edges(&data, 0.1, &mut rng);
        let cfg = GnnConfig {
            in_dim: 32,
            hidden: 32,
            out_dim: 32,
            layers: 2,
            dropout: 0.2,
            ..Default::default()
        };
        let pipe = Pipeline::new(
            &split.train_data,
            Backbone::Gcn,
            &cfg,
            CompletionMode::Single(CompletionOp::OneHot),
            &mut rng,
        );
        let out = train_link_prediction(
            &pipe,
            &split,
            &TrainConfig { epochs: 40, patience: 40, ..Default::default() },
            2,
        );
        assert!(out.roc_auc > 0.6, "auc {:.3}", out.roc_auc);
        assert!(out.mrr > 0.0 && out.mrr <= 1.0);
    }
}
