//! HGNN-AC baseline (Jin et al., WWW'21): attention-based attribute
//! completion driven by *pre-learned* topological embeddings.
//!
//! Stage 1 (pre-learning, the expensive phase of Table IV): metapath2vec-
//! style random walks + skip-gram with negative sampling, implemented with
//! hand-rolled SGD (no autograd) exactly because that is how word2vec
//! pipelines run in practice.
//!
//! Stage 2: each no-attribute node completes its attribute as an
//! attention-weighted mean of its attributed 1-hop neighbors, with
//! attention = softmax of topo-embedding dot products. One shared
//! completion operation for all nodes — the coarse-grained design AutoAC
//! improves on.

use std::rc::Rc;
use std::time::Instant;

use autoac_data::Dataset;
use autoac_graph::{walk, Adjacency};
use autoac_nn::{FeatureEncoder, Forward, Gnn, GnnConfig};
use autoac_tensor::{spmm, Csr, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pipeline::{Backbone, ForwardPipe};
use crate::trainer::{train_node_classification, ClsOutcome, TrainConfig};

/// Pre-learning and completion hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct HgnnAcConfig {
    /// Topological embedding dimension.
    pub emb_dim: usize,
    /// Random-walk length.
    pub walk_len: usize,
    /// Walks per start node.
    pub walks_per_node: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Skip-gram epochs over the pair corpus.
    pub sg_epochs: usize,
    /// Skip-gram learning rate.
    pub sg_lr: f32,
}

impl Default for HgnnAcConfig {
    fn default() -> Self {
        // metapath2vec-faithful volume (the original uses 40 walks of
        // length ~100 per node): this is what makes HGNN-AC's pre-learning
        // the dominant end-to-end cost in Table IV.
        Self {
            emb_dim: 64,
            walk_len: 80,
            walks_per_node: 40,
            window: 5,
            negatives: 5,
            sg_epochs: 2,
            sg_lr: 0.025,
        }
    }
}

/// Skip-gram with negative sampling over random walks. Returns `(N, dim)`
/// center embeddings.
pub fn train_topo_embeddings(
    data: &Dataset,
    cfg: &HgnnAcConfig,
    rng: &mut StdRng,
) -> Matrix {
    let n = data.graph.num_nodes();
    let adj = Adjacency::build(&data.graph);
    let walks = walk::uniform_walks(
        &adj,
        0..n as u32,
        cfg.walk_len,
        cfg.walks_per_node,
        rng,
    );
    let pairs = walk::skipgram_pairs(&walks, cfg.window);
    let dim = cfg.emb_dim;
    let mut emb = vec![0.0f32; n * dim];
    let mut ctx = vec![0.0f32; n * dim];
    for v in emb.iter_mut() {
        *v = (rng.gen::<f32>() - 0.5) / dim as f32;
    }
    let lr = cfg.sg_lr;
    for _ in 0..cfg.sg_epochs {
        for &(c, x) in &pairs {
            let (c, x) = (c as usize, x as usize);
            sgns_update(&mut emb, &mut ctx, c, x, 1.0, lr, dim);
            for _ in 0..cfg.negatives {
                let neg = rng.gen_range(0..n);
                if neg != x {
                    sgns_update(&mut emb, &mut ctx, c, neg, 0.0, lr, dim);
                }
            }
        }
    }
    Matrix::from_vec(n, dim, emb)
}

#[inline]
fn sgns_update(
    emb: &mut [f32],
    ctx: &mut [f32],
    center: usize,
    context: usize,
    label: f32,
    lr: f32,
    dim: usize,
) {
    let (e, c) = (center * dim, context * dim);
    let mut score = 0.0f32;
    for i in 0..dim {
        score += emb[e + i] * ctx[c + i];
    }
    let g = (1.0 / (1.0 + (-score).exp()) - label) * lr;
    for i in 0..dim {
        let ev = emb[e + i];
        emb[e + i] -= g * ctx[c + i];
        ctx[c + i] -= g * ev;
    }
}

/// Builds the attention-completion operator: row `v ∈ V⁻` holds softmax
/// weights (over attributed 1-hop neighbors) of topo-embedding dot
/// products.
pub fn attention_completion_csr(data: &Dataset, topo: &Matrix) -> Csr {
    let g = &data.graph;
    let has = data.has_attr();
    let n = g.num_nodes();
    let scale = 1.0 / (topo.cols() as f32).sqrt();
    // Collect attributed neighbors per missing node.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, s, d) in g.all_edges() {
        if !has[s as usize] && has[d as usize] {
            nbrs[s as usize].push(d);
        }
        if !has[d as usize] && has[s as usize] {
            nbrs[d as usize].push(s);
        }
    }
    let mut triplets = Vec::new();
    for (v, list) in nbrs.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        let mut scores: Vec<f32> = list
            .iter()
            .map(|&u| autoac_tensor::dot(topo.row(v), topo.row(u as usize)) * scale)
            .collect();
        autoac_tensor::softmax_in_place(&mut scores);
        for (&u, &w) in list.iter().zip(&scores) {
            triplets.push((v as u32, u, w));
        }
    }
    Csr::from_coo(n, n, triplets)
}

/// The HGNN-AC pipeline: encoder → attention completion → backbone.
pub struct HgnnAcPipe {
    encoder: FeatureEncoder,
    model: Box<dyn Gnn>,
    w: Tensor,
    att: Rc<Csr>,
    att_t: Rc<Csr>,
    missing: Vec<u32>,
    num_nodes: usize,
    features: Vec<Option<Matrix>>,
}

impl HgnnAcPipe {
    /// Assembles the pipeline given pre-learned topological embeddings.
    pub fn new(
        data: &Dataset,
        backbone: Backbone,
        gnn_cfg: &GnnConfig,
        topo: &Matrix,
        rng: &mut StdRng,
    ) -> Self {
        let encoder = FeatureEncoder::new(&data.graph, &data.features, gnn_cfg.in_dim, rng);
        let model = backbone.build(data, gnn_cfg, rng);
        let att = attention_completion_csr(data, topo);
        let att_t = att.transpose();
        Self {
            encoder,
            model,
            w: crate::pipeline::linear_param(gnn_cfg.in_dim, gnn_cfg.in_dim, rng),
            att: Rc::new(att),
            att_t: Rc::new(att_t),
            missing: data.missing_nodes(),
            num_nodes: data.graph.num_nodes(),
            features: data.features.clone(),
        }
    }

    /// The attention-completed initial embedding block.
    pub fn completed_x(&self) -> Tensor {
        let x0 = self.encoder.encode(&self.features);
        if self.missing.is_empty() {
            return x0;
        }
        let agg = spmm(&self.att, &self.att_t, &x0).gather_rows(&self.missing);
        let completed = agg.matmul(&self.w);
        x0.add(&completed.scatter_add_rows(&self.missing, self.num_nodes))
    }
}

impl ForwardPipe for HgnnAcPipe {
    fn forward(&self, training: bool, rng: &mut StdRng) -> Forward {
        self.model.forward(&self.completed_x(), training, rng)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        p.push(self.w.clone());
        p.extend(self.model.params());
        p
    }
}

/// Full HGNN-AC run: timed pre-learning, then joint training. Returns
/// `(pre-learning seconds, outcome)`.
pub fn run_hgnnac_classification(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    hc: &HgnnAcConfig,
    train: &TrainConfig,
    seed: u64,
) -> (f64, ClsOutcome) {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let topo = {
        let _obs = autoac_obs::span("prelearn");
        train_topo_embeddings(data, hc, &mut rng)
    };
    let prelearn_seconds = start.elapsed().as_secs_f64();
    let pipe = HgnnAcPipe::new(data, backbone, gnn_cfg, &topo, &mut rng);
    let outcome = train_node_classification(&pipe, data, train, seed ^ 0xac);
    (prelearn_seconds, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_data::{presets, synth};

    fn tiny_imdb() -> Dataset {
        synth::generate(&presets::imdb(), synth::Scale::Tiny, 0)
    }

    fn tiny_cfg() -> HgnnAcConfig {
        HgnnAcConfig {
            emb_dim: 16,
            walk_len: 8,
            walks_per_node: 2,
            window: 3,
            negatives: 2,
            sg_epochs: 1,
            ..Default::default()
        }
    }

    #[test]
    fn topo_embeddings_capture_adjacency() {
        let data = tiny_imdb();
        let mut rng = StdRng::seed_from_u64(0);
        let topo = train_topo_embeddings(&data, &tiny_cfg(), &mut rng);
        assert_eq!(topo.rows(), data.graph.num_nodes());
        // Connected pairs should, on average, have higher dot products than
        // random pairs.
        let mut edge_sim = 0.0f64;
        let mut count = 0;
        for (_, s, d) in data.graph.all_edges() {
            edge_sim += autoac_tensor::dot(topo.row(s as usize), topo.row(d as usize)) as f64;
            count += 1;
            if count >= 500 {
                break;
            }
        }
        edge_sim /= count as f64;
        let mut rand_sim = 0.0f64;
        for i in 0..500 {
            let a = (i * 37) % data.graph.num_nodes();
            let b = (i * 101 + 13) % data.graph.num_nodes();
            rand_sim += autoac_tensor::dot(topo.row(a), topo.row(b)) as f64;
        }
        rand_sim /= 500.0;
        assert!(
            edge_sim > rand_sim,
            "edge similarity {edge_sim:.4} must exceed random {rand_sim:.4}"
        );
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let data = tiny_imdb();
        let mut rng = StdRng::seed_from_u64(1);
        let topo = train_topo_embeddings(&data, &tiny_cfg(), &mut rng);
        let att = attention_completion_csr(&data, &topo);
        let has = data.has_attr();
        for (v, s) in att.row_sums().iter().enumerate() {
            if has[v] {
                assert_eq!(*s, 0.0, "attributed node {v} must have empty row");
            } else {
                assert!(
                    *s == 0.0 || (s - 1.0).abs() < 1e-5,
                    "row {v} sums to {s}"
                );
            }
        }
    }

    #[test]
    fn pipeline_fills_missing_rows_with_attributed_neighbors() {
        let data = tiny_imdb();
        let mut rng = StdRng::seed_from_u64(2);
        let topo = train_topo_embeddings(&data, &tiny_cfg(), &mut rng);
        let cfg = GnnConfig { in_dim: 8, out_dim: data.num_classes, ..Default::default() };
        let pipe = HgnnAcPipe::new(&data, Backbone::Gcn, &cfg, &topo, &mut rng);
        let x = pipe.completed_x();
        let v = x.value();
        // A missing node with at least one attributed neighbor gets filled.
        let adj = Adjacency::build(&data.graph);
        let has = data.has_attr();
        let candidate = data
            .missing_nodes()
            .into_iter()
            .find(|&m| adj.neighbors(m as usize).iter().any(|&u| has[u as usize]))
            .expect("some missing node has an attributed neighbor");
        assert!(v.row(candidate as usize).iter().any(|&z| z != 0.0));
    }

    #[test]
    fn end_to_end_run_reports_prelearn_time() {
        let data = tiny_imdb();
        let cfg = GnnConfig {
            in_dim: 16,
            hidden: 16,
            out_dim: data.num_classes,
            layers: 2,
            dropout: 0.2,
            ..Default::default()
        };
        let (prelearn, outcome) = run_hgnnac_classification(
            &data,
            Backbone::Gcn,
            &cfg,
            &tiny_cfg(),
            &TrainConfig { epochs: 20, patience: 20, ..Default::default() },
            3,
        );
        assert!(prelearn > 0.0);
        let chance = 1.0 / data.num_classes as f64;
        assert!(outcome.micro_f1 > chance, "micro {:.3}", outcome.micro_f1);
    }
}
