//! The AutoAC differentiable completion-operation search (paper §IV-B/C):
//! bi-level optimization with a first-order approximation, NASP-style
//! discrete constraints solved by proximal iteration (Algorithm 1), and the
//! auxiliary modularity clustering that shrinks α from `N⁻×|O|` to `M×|O|`.

use std::time::Instant;

use autoac_ckpt::{CheckpointPolicy, Fingerprint, RunMeta, SearchState};
use autoac_completion::{complete_assigned, complete_mixture, CompletionOp};
use autoac_data::{Dataset, LinkSplit};
use autoac_graph::OpCache;
use autoac_nn::GnnConfig;
use autoac_tensor::{Adam, AdamConfig, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::{kmeans, ClusterHead, ModularityContext};
use crate::pipeline::{Backbone, CompletionMode, ForwardPipe, Pipeline};
use crate::proximal::{argmax_rows, prox_c1, prox_c2};
use crate::trainer::{
    train_link_prediction_checkpointed, train_node_classification_checkpointed, ClsOutcome,
    LpOutcome, TrainConfig,
};

/// How `V⁻` nodes are grouped for the completion parameters α.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringMode {
    /// Joint modularity clustering (the paper's method, Eq. 12).
    GmoC,
    /// No clustering: one α row per `V⁻` node ("w/o cluster" in Fig. 3).
    NoCluster,
    /// k-means on the hidden representations after every epoch ("EM").
    Em,
    /// k-means after a fixed warm-up of frozen random clusters
    /// ("EM with warmup").
    EmWarmup(usize),
}

/// AutoAC hyperparameters (paper §V-B defaults).
#[derive(Debug, Clone, Copy)]
pub struct AutoAcConfig {
    /// Number of clusters M.
    pub clusters: usize,
    /// Clustering-loss weight λ.
    pub lambda: f32,
    /// Learning rate for α (5e-3 in the paper).
    pub alpha_lr: f32,
    /// Weight decay for α (1e-5 in the paper).
    pub alpha_wd: f32,
    /// `true`: Algorithm 1 with discrete constraints (proximal iteration);
    /// `false`: relaxed softmax-mixture search (the Table VIII ablation).
    pub discrete: bool,
    /// Clustering mode.
    pub clustering: ClusteringMode,
    /// Search epochs (each = one α step + one ω step).
    pub search_epochs: usize,
    /// Initial epochs that update only ω (α gradients are uninformative
    /// while the GNN weights are still random — standard DARTS warm-up).
    pub omega_warmup: usize,
    /// ω optimization settings (also used for the retraining stage).
    pub train: TrainConfig,
}

impl Default for AutoAcConfig {
    fn default() -> Self {
        Self {
            clusters: 8,
            lambda: 0.4,
            alpha_lr: 5e-3,
            alpha_wd: 1e-5,
            discrete: true,
            clustering: ClusteringMode::GmoC,
            search_epochs: 40,
            omega_warmup: 5,
            train: TrainConfig::default(),
        }
    }
}

impl AutoAcConfig {
    /// Fingerprint over every field that shapes the per-epoch search
    /// trajectory, recorded in checkpoints so a resume against a different
    /// configuration fails loudly. `search_epochs` (and `train.epochs`,
    /// unused by the search loop) are deliberately excluded: they only set
    /// the horizon, so an interrupted run may be resumed with a longer
    /// budget.
    pub fn fingerprint(&self) -> u64 {
        let (mode, warmup) = match self.clustering {
            ClusteringMode::GmoC => (0u64, 0u64),
            ClusteringMode::NoCluster => (1, 0),
            ClusteringMode::Em => (2, 0),
            ClusteringMode::EmWarmup(w) => (3, w as u64),
        };
        Fingerprint::new()
            .u64(self.clusters as u64)
            .f32(self.lambda)
            .f32(self.alpha_lr)
            .f32(self.alpha_wd)
            .bool(self.discrete)
            .u64(mode)
            .u64(warmup)
            .u64(self.omega_warmup as u64)
            .f32(self.train.lr)
            .f32(self.train.weight_decay)
            .finish()
    }
}

/// Result of the search stage.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Searched completion op per `V⁻` node (aligned with
    /// `Dataset::missing_nodes`).
    pub assignment: Vec<CompletionOp>,
    /// Cluster id per `V⁻` node.
    pub cluster_of: Vec<u32>,
    /// Final completion parameters α (`rows × |O|`).
    pub alpha: Matrix,
    /// Wall-clock seconds of the search stage.
    pub search_seconds: f64,
    /// Per-epoch trace of the clustering loss `L_GmoC` (Fig. 4).
    pub gmoc_trace: Vec<f32>,
    /// Ops histogram over `V⁻` (Fig. 5).
    pub op_histogram: [usize; 4],
}

/// A task the search can optimize: losses on the train and validation
/// splits given the model's `(N, out)` output block.
pub trait SearchTask {
    /// Training loss.
    fn train_loss(&self, output: &Tensor, rng: &mut StdRng) -> Tensor;
    /// Validation loss (drives the α updates).
    fn val_loss(&self, output: &Tensor, rng: &mut StdRng) -> Tensor;
}

/// Node classification (cross-entropy on the HGB splits).
pub struct ClassificationTask {
    labels: Vec<u32>,
    train: Vec<u32>,
    val: Vec<u32>,
}

impl ClassificationTask {
    /// Builds the task from a dataset.
    pub fn new(data: &Dataset) -> Self {
        Self {
            labels: data.global_labels(),
            train: data.split.train.clone(),
            val: data.split.val.clone(),
        }
    }
}

impl SearchTask for ClassificationTask {
    fn train_loss(&self, output: &Tensor, _rng: &mut StdRng) -> Tensor {
        output.cross_entropy_rows(&self.labels, &self.train)
    }

    fn val_loss(&self, output: &Tensor, _rng: &mut StdRng) -> Tensor {
        output.cross_entropy_rows(&self.labels, &self.val)
    }
}

/// Link prediction (BCE on remaining edges vs. resampled negatives).
pub struct LinkPredictionTask {
    split: LinkSplit,
    train_pos: Vec<(u32, u32)>,
    val_pos: Vec<(u32, u32)>,
}

impl LinkPredictionTask {
    /// Builds the task from a masked split (10% of remaining positives are
    /// held out as the search-validation set).
    pub fn new(split: &LinkSplit) -> Self {
        let all: Vec<(u32, u32)> =
            split.train_data.graph.edges_of_type(split.edge_type).to_vec();
        let n_val = (all.len() / 10).max(1);
        Self {
            split: split.clone(),
            val_pos: all[..n_val].to_vec(),
            train_pos: all[n_val..].to_vec(),
        }
    }

    fn loss_on(&self, output: &Tensor, pos: &[(u32, u32)], rng: &mut StdRng) -> Tensor {
        let negs = autoac_data::sample_train_negatives(
            &self.split.train_data,
            self.split.edge_type,
            pos.len(),
            rng,
        );
        autoac_nn::lp::lp_loss(output, pos, &negs)
    }
}

impl SearchTask for LinkPredictionTask {
    fn train_loss(&self, output: &Tensor, rng: &mut StdRng) -> Tensor {
        self.loss_on(output, &self.train_pos, rng)
    }

    fn val_loss(&self, output: &Tensor, rng: &mut StdRng) -> Tensor {
        self.loss_on(output, &self.val_pos, rng)
    }
}

/// Runs the AutoAC search stage and returns the discovered per-node
/// completion operations.
pub fn search(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    task: &dyn SearchTask,
    seed: u64,
) -> SearchOutcome {
    search_cached(data, backbone, gnn_cfg, ac, task, seed, &OpCache::new(&data.graph))
}

/// [`search`] with an explicit operator cache, so the retraining stage (and
/// any repeated searches over one dataset) can reuse the normalized CSR
/// operators the search pipeline already built.
pub fn search_cached(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    task: &dyn SearchTask,
    seed: u64,
    cache: &OpCache,
) -> SearchOutcome {
    search_checkpointed(data, backbone, gnn_cfg, ac, task, seed, cache, None)
}

/// [`search_cached`] with crash-safe checkpointing: when a
/// [`CheckpointPolicy`] is given, the full loop state (ω leaves, both Adam
/// states, α, cluster assignments, best-so-far tracking, RNG state) is
/// snapshotted at the policy's cadence, and — if the policy allows resuming
/// and a readable snapshot exists — the search restarts from it
/// **bit-identically** to an uninterrupted run. Snapshots from a different
/// graph, config, or seed are rejected loudly.
#[allow(clippy::too_many_arguments)]
pub fn search_checkpointed(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    task: &dyn SearchTask,
    seed: u64,
    cache: &OpCache,
    policy: Option<&CheckpointPolicy>,
) -> SearchOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipe = Pipeline::new_cached(data, backbone, gnn_cfg, CompletionMode::Zero, cache, &mut rng);
    let n_minus = pipe.ops.ctx().num_missing();
    if n_minus == 0 {
        return SearchOutcome {
            assignment: Vec::new(),
            cluster_of: Vec::new(),
            alpha: Matrix::zeros(0, CompletionOp::ALL.len()),
            search_seconds: 0.0,
            gmoc_trace: Vec::new(),
            op_histogram: [0; 4],
        };
    }
    let num_ops = CompletionOp::ALL.len();
    let use_clusters = ac.clustering != ClusteringMode::NoCluster;
    let alpha_rows = if use_clusters { ac.clusters } else { n_minus };

    // α initialized uniformly inside C₂ with tiny symmetry-breaking noise.
    let mut alpha_init = Matrix::full(alpha_rows, num_ops, 1.0 / num_ops as f32);
    for v in alpha_init.data_mut() {
        *v += rng.gen_range(-0.01..0.01);
    }
    let alpha = Tensor::param(alpha_init);
    let mut alpha_opt =
        Adam::new(vec![alpha.clone()], AdamConfig::with(ac.alpha_lr, ac.alpha_wd));

    // Dry forward to size the clustering head.
    let hidden_dim = {
        let f = autoac_tensor::no_grad(|| pipe.forward(false, &mut rng));
        f.hidden.shape().1
    };
    let head = ClusterHead::new(hidden_dim, ac.clusters.max(2), &mut rng);
    let modularity = ModularityContext::build(&data.graph, ac.clusters.max(2));

    // ω: encoder + all op params + backbone + clustering head.
    let mut omega: Vec<Tensor> = pipe.encoder.params();
    omega.extend(pipe.ops.params());
    omega.extend(pipe.model.params());
    if matches!(ac.clustering, ClusteringMode::GmoC) {
        omega.extend(head.params());
    }
    let mut omega_opt =
        Adam::new(omega.clone(), AdamConfig::with(ac.train.lr, ac.train.weight_decay));

    // Initial clustering: random (refined during the search).
    let missing = pipe.ops.ctx().missing.clone();
    let mut cluster_of: Vec<u32> = if use_clusters {
        (0..n_minus).map(|_| rng.gen_range(0..ac.clusters) as u32).collect()
    } else {
        (0..n_minus as u32).collect()
    };

    let mut gmoc_trace = Vec::with_capacity(ac.search_epochs);
    // Track the discretized configuration with the best validation loss
    // seen during the search; final-epoch noise can flip argmaxes into a
    // poor assignment (standard NAS practice: report the best-val arch).
    let mut best_val = f32::INFINITY;
    let mut best_snapshot: Option<(Matrix, Vec<u32>)> = None;

    // Resume: the setup above re-derived everything deterministic from the
    // seed; a snapshot overwrites the parts that evolved during the
    // interrupted run, restarting the loop at the captured epoch boundary.
    let meta = RunMeta {
        kind: "search".into(),
        graph_fp: data.graph.structural_fingerprint(),
        config_fp: ac.fingerprint(),
        seed,
        segment_fp: 0,
    };
    let mut start_epoch = 0usize;
    let mut elapsed_prior = 0.0f64;
    if let Some(pol) = policy {
        if let Some(state) = resume_search_state(pol, &meta, omega.len()) {
            alpha.set_value(state.alpha);
            for (p, m) in omega.iter().zip(state.omega) {
                p.set_value(m);
            }
            alpha_opt.import_state(state.alpha_opt);
            omega_opt.import_state(state.omega_opt);
            cluster_of = state.cluster_of;
            best_val = state.best_val;
            best_snapshot = state.best;
            gmoc_trace = state.gmoc_trace;
            rng = StdRng::from_state(state.rng);
            start_epoch = state.epochs_done as usize;
            elapsed_prior = state.elapsed_seconds;
        }
    }

    let start = Instant::now();
    let _obs_search = autoac_obs::span("search");
    for epoch in start_epoch..ac.search_epochs {
        let _obs_epoch = autoac_obs::span("epoch");
        // ------- Upper level: update α on the validation loss -----------
        alpha_opt.zero_grad();
        omega_opt.zero_grad(); // the α backward also touches ω; discard
        if epoch >= ac.omega_warmup {
            let _obs = autoac_obs::span("alpha");
            let x0 = pipe.x0();
            let (weights_tensor, grad_target) = if ac.discrete {
                // Alg. 1 line 3: discrete ᾱ = prox_C1(α); gradient taken
                // w.r.t. ᾱ (a fresh leaf), then applied to the continuous α.
                let abar = Tensor::param(prox_c1(&alpha.value()));
                (abar.clone(), abar)
            } else {
                // Relaxed ablation: softmax mixture, gradient directly on α.
                (alpha.softmax_rows(), alpha.clone())
            };
            let per_node = weights_tensor.gather_rows(&cluster_of);
            let x = complete_mixture(&pipe.ops, &x0, &per_node);
            let fwd = pipe.model.forward(&x, true, &mut rng);
            let loss = task.val_loss(&fwd.output, &mut rng);
            let val = loss.item();
            autoac_obs::series("search_val_loss", epoch as u64, val as f64);
            if val < best_val {
                best_val = val;
                best_snapshot = Some((alpha.to_matrix(), cluster_of.clone()));
            }
            autoac_check::tape::verify_backward_if_enabled(&loss);
            loss.backward();
            if ac.discrete {
                // `grad_target` is a throwaway proxy leaf: move its gradient
                // across instead of cloning it.
                if let Some(g) = grad_target.take_grad() {
                    alpha.accum_grad_public_owned(g);
                }
            }
            alpha_opt.step();
            if ac.discrete {
                // Alg. 1 line 4: α ← prox_C2(α − ε∇).
                alpha.update_value(|m| *m = prox_c2(m));
            }
        }

        // ------- Lower level: update ω on the training loss -------------
        omega_opt.zero_grad();
        alpha.zero_grad();
        let hidden = {
            let _obs = autoac_obs::span("omega");
            let x0 = pipe.x0();
            let x = if ac.discrete {
                // Alg. 1 lines 5–6: refined discrete choices; only
                // activated ops are evaluated.
                let assignment = derive_assignment(&alpha.value(), &cluster_of);
                complete_assigned(&pipe.ops, &x0, &assignment)
            } else {
                let per_node = alpha.softmax_rows().gather_rows(&cluster_of);
                complete_mixture(&pipe.ops, &x0, &per_node)
            };
            let fwd = pipe.model.forward(&x, true, &mut rng);
            let mut loss = task.train_loss(&fwd.output, &mut rng);
            if matches!(ac.clustering, ClusteringMode::GmoC) {
                let c = head.assign_soft(&fwd.hidden);
                let gmoc = modularity.loss(&c);
                let gmoc_item = gmoc.item();
                gmoc_trace.push(gmoc_item);
                autoac_obs::series("gmoc_loss", epoch as u64, gmoc_item as f64);
                loss = loss.add(&gmoc.scale(ac.lambda));
            }
            autoac_check::tape::verify_backward_if_enabled(&loss);
            loss.backward();
            let grad_norm = omega_opt.clip_grad_norm(5.0);
            autoac_obs::series("omega_grad_norm", epoch as u64, grad_norm as f64);
            omega_opt.step();
            fwd.hidden
        };

        // ------- Refresh the node → cluster map --------------------------
        {
            let _obs = autoac_obs::span("cluster");
            match ac.clustering {
                ClusteringMode::GmoC => {
                    let hm = autoac_tensor::no_grad(|| {
                        head.assign_hard(&hidden.gather_rows(&missing))
                    });
                    cluster_of = hm;
                }
                ClusteringMode::Em => {
                    cluster_of = kmeans_missing(&hidden, &missing, ac.clusters, &mut rng);
                }
                ClusteringMode::EmWarmup(warmup) => {
                    if epoch >= warmup {
                        cluster_of = kmeans_missing(&hidden, &missing, ac.clusters, &mut rng);
                    }
                }
                ClusteringMode::NoCluster => {}
            }
        }

        // ------- Search-trajectory recording (Fig. 4/5 data) --------------
        // Read-only w.r.t. RNG and parameters: training stays bitwise
        // identical with obs on or off.
        if autoac_obs::enabled() {
            autoac_obs::series_vec(
                "alpha_entropy",
                epoch as u64,
                &alpha_row_entropies(&alpha.value()),
            );
            let pool = autoac_tensor::pool::stats_snapshot();
            autoac_obs::series("pool_hit_rate", epoch as u64, pool.hit_rate());
        }

        // ------- Snapshot the completed epoch -----------------------------
        if let Some(pol) = policy {
            if pol.should_checkpoint(epoch + 1) {
                let state = SearchState {
                    meta: meta.clone(),
                    epochs_done: (epoch + 1) as u64,
                    elapsed_seconds: elapsed_prior + start.elapsed().as_secs_f64(),
                    rng: rng.state(),
                    alpha: alpha.to_matrix(),
                    omega: omega.iter().map(Tensor::to_matrix).collect(),
                    alpha_opt: alpha_opt.export_state(),
                    omega_opt: omega_opt.export_state(),
                    cluster_of: cluster_of.clone(),
                    best_val,
                    best: best_snapshot.clone(),
                    gmoc_trace: gmoc_trace.clone(),
                };
                save_search_snapshot(pol, epoch + 1, &state.to_snapshot());
            }
            pol.throttle();
        }
    }
    let search_seconds = elapsed_prior + start.elapsed().as_secs_f64();

    let (final_alpha, final_clusters) = match best_snapshot {
        Some((a, c)) => (a, c),
        None => (alpha.to_matrix(), cluster_of.clone()),
    };
    let assignment = derive_assignment(&final_alpha, &final_clusters);
    let mut op_histogram = [0usize; 4];
    for a in &assignment {
        op_histogram[a.index()] += 1;
    }
    SearchOutcome {
        assignment,
        cluster_of: final_clusters,
        alpha: final_alpha,
        search_seconds,
        gmoc_trace,
        op_histogram,
    }
}

/// Loads and validates the latest search snapshot under `pol`, panicking on
/// identity mismatches (wrong graph/config/seed/segment) and ω-count drift;
/// returns `None` when there is nothing to resume from. Shared by the
/// full-batch and minibatch search loops.
pub(crate) fn resume_search_state(
    pol: &CheckpointPolicy,
    expected: &RunMeta,
    n_omega: usize,
) -> Option<SearchState> {
    let resumed = pol
        .resume_snapshot()
        .unwrap_or_else(|e| panic!("autoac-ckpt: cannot resume search: {e}"));
    let (_, snap) = resumed?;
    let state = SearchState::from_snapshot(&snap)
        .unwrap_or_else(|e| panic!("autoac-ckpt: invalid search snapshot: {e}"));
    state
        .meta
        .validate(expected)
        .unwrap_or_else(|e| panic!("autoac-ckpt: {e}"));
    assert_eq!(
        state.omega.len(),
        n_omega,
        "autoac-ckpt: snapshot has a different ω parameter count"
    );
    Some(state)
}

/// Writes one search snapshot under an obs `ckpt` span, recording the write
/// latency; a failure is counted and warned about, never fatal.
pub(crate) fn save_search_snapshot(
    pol: &CheckpointPolicy,
    epochs_done: usize,
    snap: &autoac_ckpt::Snapshot,
) {
    let _obs = autoac_obs::span("ckpt");
    let write_start = Instant::now();
    match pol.save(epochs_done, snap) {
        Ok(_) => {
            autoac_obs::hist_record("ckpt_write_ns", write_start.elapsed().as_nanos() as f64);
        }
        Err(e) => {
            // A failed snapshot must not kill a healthy run, but it must be
            // visible in the run summary, not just on stderr.
            autoac_obs::counter_add("ckpt_write_failures", 1);
            autoac_obs::warn("ckpt", &format!("failed to write search snapshot: {e}"));
        }
    }
}

fn kmeans_missing(
    hidden: &Tensor,
    missing: &[u32],
    k: usize,
    rng: &mut StdRng,
) -> Vec<u32> {
    autoac_tensor::no_grad(|| {
        let rows = hidden.value().gather_rows(missing);
        kmeans(&rows, k, 20, rng)
    })
}

/// Per-row Shannon entropy (nats) of the α matrix, one value per cluster —
/// the Fig. 4-style convergence signal: entropy falling toward 0 means the
/// cluster has committed to one completion op. Rows are normalized to a
/// distribution first (α lives in the C₂ box, not on the simplex); an
/// all-zero row reports the uniform-distribution entropy.
fn alpha_row_entropies(alpha: &Matrix) -> Vec<f64> {
    let (rows, cols) = alpha.shape();
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = alpha.row(r);
        let sum: f64 = row.iter().map(|&v| f64::from(v.max(0.0))).sum();
        let h = if sum <= 0.0 {
            (cols as f64).ln()
        } else {
            -row.iter()
                .map(|&v| f64::from(v.max(0.0)) / sum)
                .filter(|&p| p > 0.0)
                .map(|p| p * p.ln())
                .sum::<f64>()
        };
        out.push(h);
    }
    out
}

/// Derives per-`V⁻`-node ops: each node takes the argmax op of its α row.
pub fn derive_assignment(alpha: &Matrix, cluster_of: &[u32]) -> Vec<CompletionOp> {
    let row_ops = argmax_rows(alpha);
    cluster_of
        .iter()
        .map(|&c| CompletionOp::from_index(row_ops[c as usize]))
        .collect()
}

/// Search + retrain outcome for node classification.
#[derive(Debug, Clone)]
pub struct AutoAcClsRun {
    /// Search-stage result.
    pub search: SearchOutcome,
    /// Retraining (evaluation-stage) result.
    pub outcome: ClsOutcome,
}

/// Full AutoAC for node classification: search, then retrain a fresh
/// pipeline with the discovered assignment.
pub fn run_autoac_classification(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    seed: u64,
) -> AutoAcClsRun {
    run_autoac_classification_checkpointed(data, backbone, gnn_cfg, ac, seed, None)
}

/// [`run_autoac_classification`] with crash-safe checkpointing: the search
/// and retraining stages each snapshot under a substage directory
/// (`<dir>/search`, `<dir>/retrain`) of the given policy, and a rerun after
/// a crash fast-forwards through whatever the snapshots already cover.
pub fn run_autoac_classification_checkpointed(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    seed: u64,
    policy: Option<&CheckpointPolicy>,
) -> AutoAcClsRun {
    let task = ClassificationTask::new(data);
    // One cache spans search and retraining: the retrain pipeline's
    // operators are all hits.
    let cache = OpCache::new(&data.graph);
    let search_pol = policy.map(|p| p.substage("search"));
    let search_out = search_checkpointed(
        data,
        backbone,
        gnn_cfg,
        ac,
        &task,
        seed,
        &cache,
        search_pol.as_ref(),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pipe = Pipeline::new_cached(
        data,
        backbone,
        gnn_cfg,
        CompletionMode::Assigned(search_out.assignment.clone()),
        &cache,
        &mut rng,
    );
    let retrain_pol = policy.map(|p| p.substage("retrain"));
    let outcome = train_node_classification_checkpointed(
        &pipe,
        data,
        &ac.train,
        seed ^ 0x7e7e,
        retrain_pol.as_ref(),
    );
    AutoAcClsRun { search: search_out, outcome }
}

/// Search + retrain outcome for link prediction.
#[derive(Debug, Clone)]
pub struct AutoAcLpRun {
    /// Search-stage result.
    pub search: SearchOutcome,
    /// Retraining (evaluation-stage) result.
    pub outcome: LpOutcome,
}

/// Full AutoAC for link prediction on a masked split.
pub fn run_autoac_link_prediction(
    split: &LinkSplit,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    seed: u64,
) -> AutoAcLpRun {
    run_autoac_link_prediction_checkpointed(split, backbone, gnn_cfg, ac, seed, None)
}

/// [`run_autoac_link_prediction`] with crash-safe checkpointing; see
/// [`run_autoac_classification_checkpointed`] for the substage layout.
pub fn run_autoac_link_prediction_checkpointed(
    split: &LinkSplit,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    seed: u64,
    policy: Option<&CheckpointPolicy>,
) -> AutoAcLpRun {
    let task = LinkPredictionTask::new(split);
    let cache = OpCache::new(&split.train_data.graph);
    let search_pol = policy.map(|p| p.substage("search"));
    let search_out = search_checkpointed(
        &split.train_data,
        backbone,
        gnn_cfg,
        ac,
        &task,
        seed,
        &cache,
        search_pol.as_ref(),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pipe = Pipeline::new_cached(
        &split.train_data,
        backbone,
        gnn_cfg,
        CompletionMode::Assigned(search_out.assignment.clone()),
        &cache,
        &mut rng,
    );
    let retrain_pol = policy.map(|p| p.substage("retrain"));
    let outcome = train_link_prediction_checkpointed(
        &pipe,
        split,
        &ac.train,
        seed ^ 0x7e7e,
        retrain_pol.as_ref(),
    );
    AutoAcLpRun { search: search_out, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_data::{presets, synth};

    fn tiny_imdb() -> Dataset {
        synth::generate(&presets::imdb(), synth::Scale::Tiny, 0)
    }

    fn small_cfg(data: &Dataset) -> GnnConfig {
        GnnConfig {
            in_dim: 16,
            hidden: 16,
            out_dim: data.num_classes,
            layers: 2,
            dropout: 0.2,
            ..Default::default()
        }
    }

    #[test]
    fn search_produces_valid_assignment() {
        let data = tiny_imdb();
        let gnn_cfg = small_cfg(&data);
        let ac = AutoAcConfig {
            clusters: 4,
            search_epochs: 6,
            train: TrainConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        };
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::Gcn, &gnn_cfg, &ac, &task, 0);
        assert_eq!(out.assignment.len(), data.missing_nodes().len());
        assert_eq!(out.cluster_of.len(), out.assignment.len());
        assert!(out.cluster_of.iter().all(|&c| c < 4));
        assert_eq!(out.alpha.shape(), (4, 4));
        // α stays inside C₂.
        assert!(out.alpha.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(out.op_histogram.iter().sum::<usize>(), out.assignment.len());
        assert_eq!(out.gmoc_trace.len(), 6);
        assert!(out.search_seconds > 0.0);
    }

    #[test]
    fn gmoc_trace_decreases() {
        let data = tiny_imdb();
        let gnn_cfg = small_cfg(&data);
        let ac = AutoAcConfig {
            clusters: 4,
            search_epochs: 15,
            train: TrainConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        };
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::Gcn, &gnn_cfg, &ac, &task, 1);
        let first: f32 = out.gmoc_trace[..3].iter().sum::<f32>() / 3.0;
        let last: f32 = out.gmoc_trace[out.gmoc_trace.len() - 3..].iter().sum::<f32>() / 3.0;
        assert!(
            last < first + 0.05,
            "clustering loss should not increase: {first} -> {last} ({:?})",
            out.gmoc_trace
        );
    }

    #[test]
    fn no_cluster_mode_has_per_node_alpha() {
        let data = tiny_imdb();
        let gnn_cfg = small_cfg(&data);
        let ac = AutoAcConfig {
            clustering: ClusteringMode::NoCluster,
            search_epochs: 3,
            train: TrainConfig { epochs: 3, ..Default::default() },
            ..Default::default()
        };
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::Gcn, &gnn_cfg, &ac, &task, 2);
        let n_minus = data.missing_nodes().len();
        assert_eq!(out.alpha.rows(), n_minus);
        assert_eq!(out.cluster_of, (0..n_minus as u32).collect::<Vec<_>>());
    }

    #[test]
    fn mixture_mode_runs_without_discrete_constraints() {
        let data = tiny_imdb();
        let gnn_cfg = small_cfg(&data);
        let ac = AutoAcConfig {
            discrete: false,
            clusters: 4,
            search_epochs: 4,
            train: TrainConfig { epochs: 3, ..Default::default() },
            ..Default::default()
        };
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::Gcn, &gnn_cfg, &ac, &task, 3);
        assert_eq!(out.assignment.len(), data.missing_nodes().len());
    }

    #[test]
    fn full_run_beats_chance() {
        let data = tiny_imdb();
        let gnn_cfg = small_cfg(&data);
        let ac = AutoAcConfig {
            clusters: 4,
            search_epochs: 8,
            train: TrainConfig { epochs: 50, patience: 50, ..Default::default() },
            ..Default::default()
        };
        let run = run_autoac_classification(&data, Backbone::Gcn, &gnn_cfg, &ac, 4);
        let chance = 1.0 / data.num_classes as f64;
        assert!(
            run.outcome.micro_f1 > chance + 0.15,
            "micro-f1 {:.3} vs chance {chance:.3}",
            run.outcome.micro_f1
        );
    }

    #[test]
    fn derive_assignment_maps_clusters() {
        let alpha = Matrix::from_rows(&[
            &[0.9, 0.0, 0.1, 0.0], // cluster 0 → Mean
            &[0.0, 0.0, 0.0, 1.0], // cluster 1 → OneHot
        ]);
        let assign = derive_assignment(&alpha, &[1, 0, 1]);
        assert_eq!(
            assign,
            vec![CompletionOp::OneHot, CompletionOp::Mean, CompletionOp::OneHot]
        );
    }

    #[test]
    fn empty_missing_set_short_circuits() {
        let mut data = tiny_imdb();
        // Give every type raw attributes.
        for t in 0..data.graph.num_node_types() {
            data = data.with_onehot_features(t);
        }
        let gnn_cfg = small_cfg(&data);
        let ac = AutoAcConfig::default();
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::Gcn, &gnn_cfg, &ac, &task, 5);
        assert!(out.assignment.is_empty());
        assert_eq!(out.search_seconds, 0.0);
    }
}
