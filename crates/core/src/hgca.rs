//! HGCA-lite (He et al., TNNLS'22): unsupervised attribute completion by
//! contrastive learning, then supervised training on top.
//!
//! Stage 1 pre-trains the per-type encoder and a mean-aggregation
//! completion transform with an InfoNCE objective: a random subset of
//! *attributed* nodes is masked, their attributes are reconstructed from
//! attributed neighbors, and each reconstruction must identify its own
//! node's true projection among in-batch negatives (this is the collapse-
//! proof part — plain MSE has a trivial zero solution).
//!
//! Stage 2 freezes the completion and trains a GNN for the downstream
//! task. The full HGCA couples completion and representation learning more
//! tightly; the two-stage form preserves the comparison-relevant property
//! (unsupervised completion, no per-node operation search). DESIGN.md §1.

use autoac_data::Dataset;
use autoac_graph::norm;
use autoac_nn::{FeatureEncoder, Forward, Gnn, GnnConfig};
use autoac_tensor::{spmm, Adam, AdamConfig, Csr, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::rc::Rc;

use crate::pipeline::{Backbone, ForwardPipe};
use crate::trainer::{train_node_classification, ClsOutcome, TrainConfig};

/// HGCA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct HgcaConfig {
    /// Unsupervised pre-training epochs.
    pub pretrain_epochs: usize,
    /// Fraction of attributed nodes masked per pre-training epoch.
    pub mask_fraction: f64,
    /// InfoNCE temperature τ.
    pub temperature: f32,
    /// Pre-training learning rate.
    pub lr: f32,
}

impl Default for HgcaConfig {
    fn default() -> Self {
        Self { pretrain_epochs: 30, mask_fraction: 0.2, temperature: 0.5, lr: 1e-3 }
    }
}

/// The HGCA pipeline after pre-training: frozen encoder + frozen mean
/// completion, trainable backbone.
pub struct HgcaPipe {
    encoder: FeatureEncoder,
    w_mean: Tensor,
    mean_agg: Rc<Csr>,
    mean_agg_t: Rc<Csr>,
    missing: Vec<u32>,
    num_nodes: usize,
    model: Box<dyn Gnn>,
    features: Vec<Option<Matrix>>,
}

impl ForwardPipe for HgcaPipe {
    fn forward(&self, training: bool, rng: &mut StdRng) -> Forward {
        // Frozen completion: evaluated outside the autograd graph.
        let x = autoac_tensor::no_grad(|| {
            let x0 = self.encoder.encode(&self.features);
            if self.missing.is_empty() {
                return x0.to_matrix();
            }
            let agg = spmm(&self.mean_agg, &self.mean_agg_t, &x0)
                .gather_rows(&self.missing)
                .matmul(&self.w_mean);
            x0.add(&agg.scatter_add_rows(&self.missing, self.num_nodes)).to_matrix()
        });
        self.model.forward(&Tensor::constant(x), training, rng)
    }

    fn params(&self) -> Vec<Tensor> {
        // Completion is frozen after pre-training: only the backbone trains.
        self.model.params()
    }
}

/// Runs the unsupervised pre-training stage; returns the assembled pipe.
pub fn pretrain_hgca(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    hc: &HgcaConfig,
    seed: u64,
) -> HgcaPipe {
    let mut rng = StdRng::seed_from_u64(seed);
    let encoder = FeatureEncoder::new(&data.graph, &data.features, gnn_cfg.in_dim, &mut rng);
    let w_mean =
        Tensor::param(autoac_tensor::init::xavier_uniform(gnn_cfg.in_dim, gnn_cfg.in_dim, &mut rng));
    let has = data.has_attr();
    let attributed: Vec<u32> = has
        .iter()
        .enumerate()
        .filter_map(|(v, &h)| h.then_some(v as u32))
        .collect();
    let mut params = encoder.params();
    params.push(w_mean.clone());
    let mut opt = Adam::new(params, AdamConfig::with(hc.lr, 1e-5));
    let k = ((attributed.len() as f64 * hc.mask_fraction) as usize).clamp(2, 256);
    let mut pool = attributed.clone();
    for _ in 0..hc.pretrain_epochs {
        pool.shuffle(&mut rng);
        let masked = &pool[..k];
        // Aggregation operator that treats the masked nodes as missing.
        let mut has_ep = has.clone();
        for &m in masked {
            has_ep[m as usize] = false;
        }
        let agg = Rc::new(crate::hgca::restricted_mean(&data.graph, &has_ep, masked));
        let agg_t = Rc::new(agg.transpose());

        opt.zero_grad();
        let x0 = encoder.encode(&data.features);
        let recon = spmm(&agg, &agg_t, &x0).gather_rows(masked).matmul(&w_mean); // (k, d)
        let truth = x0.gather_rows(masked); // (k, d)
        // InfoNCE: each reconstruction must pick out its own node.
        let logits = recon.matmul(&truth.transpose()).scale(1.0 / hc.temperature);
        let targets: Vec<u32> = (0..k as u32).collect();
        let rows: Vec<u32> = (0..k as u32).collect();
        let loss = logits.cross_entropy_rows(&targets, &rows);
        autoac_check::tape::verify_backward_if_enabled(&loss);
        loss.backward();
        opt.step();
    }
    // Final completion operator over the *actually* missing nodes.
    let ctx_missing = data.missing_nodes();
    let agg = norm::mean_attr_agg(&data.graph, &has);
    let agg = autoac_completion::restrict_rows(&agg, &ctx_missing);
    let agg_t = agg.transpose();
    let model = backbone.build(data, gnn_cfg, &mut rng);
    HgcaPipe {
        encoder,
        w_mean,
        mean_agg: Rc::new(agg),
        mean_agg_t: Rc::new(agg_t),
        missing: ctx_missing,
        num_nodes: data.graph.num_nodes(),
        model,
        features: data.features.clone(),
    }
}

/// Mean aggregation over `has_attr` neighbors, rows restricted to `rows`.
fn restricted_mean(graph: &autoac_graph::HeteroGraph, has_attr: &[bool], rows: &[u32]) -> Csr {
    autoac_completion::restrict_rows(&norm::mean_attr_agg(graph, has_attr), rows)
}

/// Full HGCA run: pre-train, then supervised training of the backbone.
pub fn run_hgca_classification(
    data: &Dataset,
    backbone: Backbone,
    gnn_cfg: &GnnConfig,
    hc: &HgcaConfig,
    train: &TrainConfig,
    seed: u64,
) -> ClsOutcome {
    let pipe = pretrain_hgca(data, backbone, gnn_cfg, hc, seed);
    train_node_classification(&pipe, data, train, seed ^ 0xca)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_data::{presets, synth};

    fn tiny_acm() -> Dataset {
        synth::generate(&presets::acm(), synth::Scale::Tiny, 0)
    }

    #[test]
    fn pretraining_reduces_contrastive_loss() {
        let data = tiny_acm();
        let gnn = GnnConfig { in_dim: 16, out_dim: data.num_classes, ..Default::default() };
        let hc = HgcaConfig { pretrain_epochs: 2, ..Default::default() };
        // Measure loss before and after a longer pre-training run by
        // comparing reconstruction quality via the pipe's completed rows.
        let pipe_short = pretrain_hgca(&data, Backbone::Gcn, &gnn, &hc, 0);
        let hc_long = HgcaConfig { pretrain_epochs: 40, ..Default::default() };
        let pipe_long = pretrain_hgca(&data, Backbone::Gcn, &gnn, &hc_long, 0);
        // Proxy check: completion transform moved away from init.
        let delta = pipe_long
            .w_mean
            .to_matrix()
            .sub(&pipe_short.w_mean.to_matrix())
            .frob();
        assert!(delta > 0.0, "pre-training must update the transform");
    }

    #[test]
    fn frozen_completion_keeps_params_out_of_training() {
        let data = tiny_acm();
        let gnn = GnnConfig {
            in_dim: 16,
            hidden: 16,
            out_dim: data.num_classes,
            layers: 2,
            ..Default::default()
        };
        let hc = HgcaConfig { pretrain_epochs: 2, ..Default::default() };
        let pipe = pretrain_hgca(&data, Backbone::Gcn, &gnn, &hc, 1);
        // Only backbone params are exposed.
        let n_model = pipe.model.params().len();
        assert_eq!(pipe.params().len(), n_model);
    }

    #[test]
    fn end_to_end_beats_chance() {
        let data = tiny_acm();
        let gnn = GnnConfig {
            in_dim: 24,
            hidden: 24,
            out_dim: data.num_classes,
            layers: 2,
            dropout: 0.2,
            ..Default::default()
        };
        let hc = HgcaConfig { pretrain_epochs: 10, ..Default::default() };
        let out = run_hgca_classification(
            &data,
            Backbone::Gcn,
            &gnn,
            &hc,
            &TrainConfig { epochs: 40, ..Default::default() },
            2,
        );
        // HGCA's frozen completion + GCN is the weakest pipeline here and
        // tiny ACM is deliberately noisy; beating chance is the invariant.
        let chance = 1.0 / data.num_classes as f64;
        assert!(out.micro_f1 > chance, "micro {:.3}", out.micro_f1);
    }
}
