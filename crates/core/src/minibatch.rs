//! Neighbor-sampled minibatch variants of the AutoAC search and retraining
//! loops, for graphs two orders of magnitude beyond the full-batch path.
//!
//! Two batch schedules are supported, selected by [`MinibatchConfig`]:
//!
//! - **Sampled** (`batch_size > 0`): every epoch shuffles the train split,
//!   cuts it into cores of `batch_size` nodes, and expands each core with
//!   the deterministic [`NeighborSampler`](crate::sampler::NeighborSampler).
//! - **Shard** (`shards ≥ 2`): the graph is partitioned once by
//!   [`ShardPlan`] into type-aware shards (core ∪ full 1-hop halo); every
//!   epoch steps through the shards, whose operators live in a
//!   [`ShardedOpCache`] keyed by segment fingerprint.
//!
//! The degenerate configuration ([`MinibatchConfig::full_batch`]) routes to
//! the *exact* legacy full-batch functions, so its results are bitwise
//! identical to the classic pipeline by construction — the CI digest check
//! relies on this.
//!
//! Checkpoints written by the minibatch loops carry a non-zero
//! `RunMeta::segment_fp` (schedule + shard-plan fingerprint), so resuming a
//! sharded run against a different partitioning fails loudly instead of
//! silently mixing segment trajectories.

use std::time::Instant;

use autoac_ckpt::{CheckpointPolicy, Fingerprint, RunMeta, SearchState, TrainState};
use autoac_completion::{
    complete_assigned, complete_assigned_in, complete_mixture_in, CompletionContext,
    CompletionOp, CompletionOps,
};
use autoac_data::Dataset;
use autoac_graph::{HeteroGraph, OpCache, ShardPlan, ShardStrategy, ShardedOpCache};
use autoac_nn::models::{Gcn, Gnn};
use autoac_nn::{FeatureEncoder, Forward, GnnConfig};
use autoac_tensor::{Adam, AdamConfig, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cluster::{ClusterHead, ModularityContext};
use crate::pipeline::{CompletionMode, ForwardPipe};
use crate::proximal::{prox_c1, prox_c2};
use crate::sampler::{batch_rng, NeighborSampler};
use crate::search::{
    derive_assignment, resume_search_state, save_search_snapshot, AutoAcConfig, ClusteringMode,
    SearchOutcome,
};
use crate::trainer::{
    eval_classification, restore, resume_train_state, save_train_snapshot, snapshot,
    train_node_classification_checkpointed, ClsOutcome, TrainConfig,
};

/// Reserved `batch` coordinate for per-epoch schedule shuffles (never
/// collides with real batch indices).
const SCHEDULE_DRAW: u64 = u64::MAX;
/// Reserved `epoch` coordinate for one-time validation-batch sampling.
const VAL_DRAW: u64 = u64::MAX;

/// Strict parser for `AUTOAC_SHARDS`: a positive decimal integer (`1`
/// disables sharding). Empty values, garbage, and zero are errors — a
/// malformed setting must abort instead of silently training full-batch.
pub fn parse_shards_env(raw: &str) -> Result<usize, String> {
    let t = raw.trim();
    if t.is_empty() {
        return Err("AUTOAC_SHARDS is set but empty; use a positive integer (or unset it)".into());
    }
    match t.parse::<usize>() {
        Ok(0) => Err("AUTOAC_SHARDS=0 is invalid; shard count must be >= 1".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "AUTOAC_SHARDS={t:?} is not a positive integer (overflow counts as invalid)"
        )),
    }
}

/// Minibatch schedule configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinibatchConfig {
    /// Core nodes per sampled batch; `0` disables the sampled schedule.
    pub batch_size: usize,
    /// Per-node neighbor cap per expansion hop (`None` = all neighbors).
    pub fanout: Option<usize>,
    /// Neighbor-expansion rounds around each core (2 matches the default
    /// 2-layer GCN receptive field).
    pub hops: usize,
    /// Sampled batches per epoch; `0` covers the whole train split once.
    pub batches_per_epoch: usize,
    /// Shard count; `≥ 2` switches to the shard schedule (which takes
    /// precedence over `batch_size`).
    pub shards: usize,
    /// Partitioning strategy for the shard schedule.
    pub strategy: ShardStrategy,
}

impl Default for MinibatchConfig {
    fn default() -> Self {
        Self {
            batch_size: 0,
            fanout: None,
            hops: 2,
            batches_per_epoch: 0,
            shards: 0,
            strategy: ShardStrategy::DegreeLocality,
        }
    }
}

impl MinibatchConfig {
    /// The degenerate configuration: full-batch training, bitwise identical
    /// to the legacy pipeline.
    pub fn full_batch() -> Self {
        Self::default()
    }

    /// True when this configuration routes to the legacy full-batch path.
    pub fn is_full_batch(&self) -> bool {
        self.shards <= 1 && self.batch_size == 0
    }

    /// True when the shard schedule is active.
    pub fn is_sharded(&self) -> bool {
        self.shards >= 2
    }

    /// Applies the `AUTOAC_SHARDS` environment override (strictly parsed;
    /// a malformed value panics).
    pub fn from_env(mut self) -> Self {
        if let Ok(raw) = std::env::var("AUTOAC_SHARDS") {
            self.shards =
                parse_shards_env(&raw).unwrap_or_else(|e| panic!("autoac-core: {e}"));
        }
        self
    }

    /// Segment fingerprint recorded in checkpoints: `0` for the full-batch
    /// degenerate config (whole-graph identity), otherwise a hash of every
    /// schedule-shaping field mixed with the shard plan's fingerprint.
    pub fn segment_fp(&self, plan_fp: u64) -> u64 {
        if self.is_full_batch() {
            return 0;
        }
        Fingerprint::new()
            .u64(self.batch_size as u64)
            .u64(self.fanout.map_or(0, |f| f as u64 + 1))
            .u64(self.hops as u64)
            .u64(self.batches_per_epoch as u64)
            .u64(self.shards as u64)
            .u64(u64::from(self.strategy.tag()))
            .u64(plan_fp)
            .finish()
    }
}

/// A prepared batch: the subgraph, its completion operators, label and
/// loss-row bookkeeping, and the index maps back into the parent graph.
struct BatchData {
    /// Selected global ids, sorted (batch-local id order).
    nodes: Vec<u32>,
    /// The induced subgraph in batch-local ids.
    graph: HeteroGraph,
    /// Completion operators over the batch subgraph (local id space);
    /// `ctx.sym_adj` doubles as the GCN operator.
    ctx: CompletionContext,
    /// Global missing-list position of each batch-local missing node.
    onehot_rows: Vec<u32>,
    /// Global labels gathered into batch-local order.
    labels: Vec<u32>,
    /// Batch-local rows the training loss reads (core ∩ train split).
    loss_rows: Vec<u32>,
    /// Batch-local rows of core validation nodes.
    val_rows: Vec<u32>,
}

/// Pipeline variant that can run both whole-graph and batch-local forwards
/// with one set of weights. The backbone is a concrete [`Gcn`] (the only
/// backbone whose layer stack is defined over an arbitrary normalized
/// adjacency); construction consumes RNG draws exactly like
/// [`Pipeline::new_cached`](crate::pipeline::Pipeline::new_cached) with
/// [`Backbone::Gcn`](crate::pipeline::Backbone::Gcn), so a same-seed
/// [`MinibatchPipeline`] and `Pipeline` hold bitwise-identical parameters.
pub struct MinibatchPipeline {
    /// Per-type input projections.
    pub encoder: FeatureEncoder,
    /// Completion op parameters and whole-graph operators.
    pub ops: CompletionOps,
    /// GCN backbone (whole-graph `Â` inside; batches supply their own).
    pub gcn: Gcn,
    features: Vec<Option<Matrix>>,
    mode: CompletionMode,
    has_attr: Vec<bool>,
    /// Global node id → position in the global missing list
    /// (`u32::MAX` for attributed nodes).
    missing_index: Vec<u32>,
}

impl MinibatchPipeline {
    /// Assembles the pipeline with a private operator cache.
    pub fn new(
        data: &Dataset,
        cfg: &GnnConfig,
        mode: CompletionMode,
        rng: &mut StdRng,
    ) -> Self {
        Self::new_cached(data, cfg, mode, &OpCache::new(&data.graph), rng)
    }

    /// Assembles the pipeline; whole-graph operators come from `cache`.
    pub fn new_cached(
        data: &Dataset,
        cfg: &GnnConfig,
        mode: CompletionMode,
        cache: &OpCache,
        rng: &mut StdRng,
    ) -> Self {
        let has_attr = data.has_attr();
        // Same construction (and RNG-draw) order as Pipeline::new_cached.
        let encoder = FeatureEncoder::new(&data.graph, &data.features, cfg.in_dim, rng);
        let ctx = CompletionContext::build_cached(&data.graph, &has_attr, cache);
        let ops = CompletionOps::new(ctx, cfg.in_dim, rng);
        let gcn = Gcn::with_adj(cache.sym_norm_adj(&data.graph), cfg, rng);
        let mut missing_index = vec![u32::MAX; data.graph.num_nodes()];
        for (i, &v) in ops.ctx().missing.iter().enumerate() {
            missing_index[v as usize] = i as u32;
        }
        Self {
            encoder,
            ops,
            gcn,
            features: data.features.clone(),
            mode,
            has_attr,
            missing_index,
        }
    }

    /// Replaces the completion mode (e.g. after a search).
    pub fn set_mode(&mut self, mode: CompletionMode) {
        self.mode = mode;
    }

    /// The current completion mode.
    pub fn mode(&self) -> &CompletionMode {
        &self.mode
    }

    /// Batch-local forward: encode only the batch's nodes, complete its
    /// missing rows with the shared op parameters against the batch
    /// operators, and run the GCN stack over the batch's `Â`.
    fn forward_batch(&self, bd: &BatchData, training: bool, rng: &mut StdRng) -> Forward {
        let x0 = self.encoder.encode_subset(&self.features, &bd.nodes);
        let x = match &self.mode {
            CompletionMode::Zero => x0,
            CompletionMode::Single(op) => {
                let n = bd.ctx.num_missing();
                complete_assigned_in(&self.ops, &bd.ctx, &bd.onehot_rows, &x0, &vec![*op; n])
            }
            CompletionMode::Assigned(assign) => {
                let sub: Vec<CompletionOp> =
                    bd.onehot_rows.iter().map(|&p| assign[p as usize]).collect();
                complete_assigned_in(&self.ops, &bd.ctx, &bd.onehot_rows, &x0, &sub)
            }
        };
        self.gcn.forward_on(&bd.ctx.sym_adj, &x, training, rng)
    }

    /// Builds one [`BatchData`] from a selection and its induced subgraph.
    /// `cache` is the shard-segment cache (reused operators) or `None` for
    /// one-shot sampled batches.
    fn build_batch(
        &self,
        labels: &[u32],
        in_train: &[bool],
        in_val: &[bool],
        nodes: Vec<u32>,
        is_core: &[bool],
        graph: HeteroGraph,
        cache: Option<&OpCache>,
    ) -> BatchData {
        let has_attr_sub: Vec<bool> =
            nodes.iter().map(|&v| self.has_attr[v as usize]).collect();
        let ctx = match cache {
            Some(c) => CompletionContext::build_cached(&graph, &has_attr_sub, c),
            None => CompletionContext::build(&graph, &has_attr_sub),
        };
        let onehot_rows: Vec<u32> = ctx
            .missing
            .iter()
            .map(|&i| {
                let p = self.missing_index[nodes[i as usize] as usize];
                assert!(p != u32::MAX, "batch missing node is attributed globally");
                p
            })
            .collect();
        let labels_sub: Vec<u32> = nodes.iter().map(|&v| labels[v as usize]).collect();
        let mut loss_rows = Vec::new();
        let mut val_rows = Vec::new();
        for (i, &v) in nodes.iter().enumerate() {
            if !is_core[i] {
                continue;
            }
            if in_train[v as usize] {
                loss_rows.push(i as u32);
            } else if in_val[v as usize] {
                val_rows.push(i as u32);
            }
        }
        BatchData { nodes, graph, ctx, onehot_rows, labels: labels_sub, loss_rows, val_rows }
    }
}

impl ForwardPipe for MinibatchPipeline {
    fn forward(&self, training: bool, rng: &mut StdRng) -> Forward {
        let x0 = self.encoder.encode(&self.features);
        let x = match &self.mode {
            CompletionMode::Zero => x0,
            CompletionMode::Single(op) => {
                let n = self.ops.ctx().num_missing();
                complete_assigned(&self.ops, &x0, &vec![*op; n])
            }
            CompletionMode::Assigned(assign) => complete_assigned(&self.ops, &x0, assign),
        };
        self.gcn.forward(&x, training, rng)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        match &self.mode {
            CompletionMode::Zero => {}
            CompletionMode::Single(op) => p.extend(self.ops.op_params(*op)),
            CompletionMode::Assigned(assign) => {
                for &op in &CompletionOp::ALL {
                    if assign.contains(&op) {
                        p.extend(self.ops.op_params(op));
                    }
                }
            }
        }
        p.extend(self.gcn.params());
        p
    }
}

/// The batch schedule, fixed for a whole run.
enum Schedule {
    /// Precomputed shard batches (core ∪ halo subgraphs with cached ops).
    Shards { batches: Vec<BatchData>, plan_fp: u64 },
    /// Per-epoch neighbor-sampled batches over the shuffled train split,
    /// plus one fixed validation batch.
    Sampled { sampler: NeighborSampler, train_ids: Vec<u32>, val_batch: Option<BatchData> },
}

impl Schedule {
    fn plan_fp(&self) -> u64 {
        match self {
            Schedule::Shards { plan_fp, .. } => *plan_fp,
            Schedule::Sampled { .. } => 0,
        }
    }
}

fn membership_mask(n: usize, ids: &[u32]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &v in ids {
        mask[v as usize] = true;
    }
    mask
}

/// Builds the run's schedule. Shard batches (and their cached operators)
/// are extracted once up front; sampled mode builds its fixed validation
/// batch (a deterministic subset of the val split plus sampled halo).
fn build_schedule(
    pipe: &MinibatchPipeline,
    data: &Dataset,
    mb: &MinibatchConfig,
    labels: &[u32],
    in_train: &[bool],
    in_val: &[bool],
    seed: u64,
) -> Schedule {
    if mb.is_sharded() {
        let plan = ShardPlan::partition(&data.graph, mb.strategy, mb.shards);
        let seg_cache = ShardedOpCache::new();
        let batches: Vec<BatchData> = plan
            .extract_all(&data.graph)
            .into_iter()
            .map(|shard| {
                let seg = seg_cache.for_graph(&shard.graph);
                pipe.build_batch(
                    labels,
                    in_train,
                    in_val,
                    shard.nodes,
                    &shard.is_core,
                    shard.graph,
                    Some(&seg),
                )
            })
            .collect();
        Schedule::Shards { batches, plan_fp: plan.fingerprint() }
    } else {
        assert!(mb.batch_size > 0, "minibatch config is full-batch");
        let sampler = NeighborSampler::new(&data.graph);
        let val_batch = if data.split.val.is_empty() {
            None
        } else {
            // A fixed, deterministic validation core: up to one batch worth
            // of val nodes (at least 256 for a stable early-stop signal).
            let mut val_ids = data.split.val.clone();
            val_ids.shuffle(&mut batch_rng(seed, VAL_DRAW, 0));
            val_ids.truncate(mb.batch_size.max(256).min(val_ids.len()));
            let batch = sampler.sample(
                &data.graph,
                &val_ids,
                mb.fanout,
                mb.hops,
                &mut batch_rng(seed, VAL_DRAW, 1),
            );
            Some(pipe.build_batch(
                labels,
                in_train,
                in_val,
                batch.nodes,
                &batch.is_core,
                batch.graph,
                None,
            ))
        };
        Schedule::Sampled { sampler, train_ids: data.split.train.clone(), val_batch }
    }
}

/// The sampled-mode batch cores for one epoch: the train split shuffled by
/// a `(seed, epoch)`-derived RNG and cut into `batch_size` chunks,
/// optionally truncated to `batches_per_epoch`.
fn epoch_cores(
    train_ids: &[u32],
    mb: &MinibatchConfig,
    seed: u64,
    epoch: usize,
) -> Vec<Vec<u32>> {
    let mut order = train_ids.to_vec();
    order.shuffle(&mut batch_rng(seed, epoch as u64, SCHEDULE_DRAW));
    let mut cores: Vec<Vec<u32>> =
        order.chunks(mb.batch_size).map(<[u32]>::to_vec).collect();
    if mb.batches_per_epoch > 0 {
        cores.truncate(mb.batches_per_epoch);
    }
    cores
}

/// Scores one batch's core validation rows into `pred`/`truth`.
fn score_val_rows(
    pipe: &MinibatchPipeline,
    bd: &BatchData,
    pred: &mut Vec<u32>,
    truth: &mut Vec<u32>,
    rng: &mut StdRng,
) {
    if bd.val_rows.is_empty() {
        return;
    }
    let fwd = pipe.forward_batch(bd, false, rng);
    let out = fwd.output.value();
    for &r in &bd.val_rows {
        pred.push(out.argmax_row(r as usize) as u32);
        truth.push(bd.labels[r as usize]);
    }
}

/// Validation F1 for one epoch. Shard mode evaluates every shard's core
/// val rows (each val node is core in exactly one shard → exact coverage);
/// sampled mode scores the fixed validation batch.
fn eval_val_minibatch(
    pipe: &MinibatchPipeline,
    schedule: &Schedule,
    num_classes: usize,
    rng: &mut StdRng,
) -> autoac_eval::F1Scores {
    autoac_tensor::no_grad(|| {
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        match schedule {
            Schedule::Shards { batches, .. } => {
                for bd in batches {
                    score_val_rows(pipe, bd, &mut pred, &mut truth, rng);
                }
            }
            Schedule::Sampled { val_batch, .. } => {
                if let Some(bd) = val_batch {
                    score_val_rows(pipe, bd, &mut pred, &mut truth, rng);
                }
            }
        }
        autoac_eval::f1_scores(&pred, &truth, num_classes)
    })
}

/// Minibatch node-classification training.
///
/// With a full-batch [`MinibatchConfig`] this *is*
/// [`train_node_classification_checkpointed`] — same code path, bitwise
/// identical results. Otherwise the epoch loop steps through the schedule's
/// batches, early-stops on (approximate) validation Micro-F1, and finishes
/// with an **exact** whole-graph test evaluation.
pub fn train_node_classification_minibatch(
    pipe: &MinibatchPipeline,
    data: &Dataset,
    cfg: &TrainConfig,
    mb: &MinibatchConfig,
    seed: u64,
    policy: Option<&CheckpointPolicy>,
) -> ClsOutcome {
    if mb.is_full_batch() {
        return train_node_classification_checkpointed(pipe, data, cfg, seed, policy);
    }
    assert!(data.num_classes > 0, "dataset has no classification task");
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = data.global_labels();
    let n = data.graph.num_nodes();
    let in_train = membership_mask(n, &data.split.train);
    let in_val = membership_mask(n, &data.split.val);
    let schedule = build_schedule(pipe, data, mb, &labels, &in_train, &in_val, seed);

    let params = pipe.params();
    let mut opt = Adam::new(params.clone(), AdamConfig::with(cfg.lr, cfg.weight_decay));
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snap = snapshot(&params);
    let mut bad_epochs = 0;

    let meta = RunMeta {
        kind: "train-cls-mb".into(),
        graph_fp: data.graph.structural_fingerprint(),
        config_fp: cfg.fingerprint(),
        seed,
        segment_fp: mb.segment_fp(schedule.plan_fp()),
    };
    let mut start_epoch = 0usize;
    let mut elapsed_prior = 0.0f64;
    if let Some(pol) = policy {
        if let Some(state) = resume_train_state(pol, &meta, params.len()) {
            restore(&params, &state.params);
            opt.import_state(state.opt);
            best_val = state.best_val;
            best_snap = state.best_snap;
            bad_epochs = state.bad_epochs as usize;
            rng = StdRng::from_state(state.rng);
            start_epoch = state.epochs_done as usize;
            elapsed_prior = state.elapsed_seconds;
        }
    }

    let start = Instant::now();
    let _obs_train = autoac_obs::span("train");
    let mut epochs_run = start_epoch;
    for epoch in start_epoch..cfg.epochs {
        if bad_epochs > 0 && bad_epochs >= cfg.patience {
            break;
        }
        let _obs_epoch = autoac_obs::span("epoch");
        epochs_run = epoch + 1;

        let mut loss_sum = 0.0f64;
        let mut steps = 0u32;
        let mut step = |bd: &BatchData, rng: &mut StdRng| {
            if bd.loss_rows.is_empty() {
                return;
            }
            opt.zero_grad();
            let fwd = pipe.forward_batch(bd, true, rng);
            let loss = fwd.output.cross_entropy_rows(&bd.labels, &bd.loss_rows);
            autoac_check::tape::verify_backward_if_enabled(&loss);
            if autoac_obs::enabled() {
                loss_sum += f64::from(loss.item());
                steps += 1;
            }
            loss.backward();
            opt.clip_grad_norm(5.0);
            opt.step();
            autoac_obs::counter_add("minibatch_steps", 1);
        };
        match &schedule {
            Schedule::Shards { batches, .. } => {
                for bd in batches {
                    step(bd, &mut rng);
                }
            }
            Schedule::Sampled { sampler, train_ids, .. } => {
                for (b, core) in epoch_cores(train_ids, mb, seed, epoch).iter().enumerate() {
                    let batch = sampler.sample(
                        &data.graph,
                        core,
                        mb.fanout,
                        mb.hops,
                        &mut batch_rng(seed, epoch as u64, b as u64),
                    );
                    let bd = pipe.build_batch(
                        &labels,
                        &in_train,
                        &in_val,
                        batch.nodes,
                        &batch.is_core,
                        batch.graph,
                        None,
                    );
                    step(&bd, &mut rng);
                }
            }
        }
        drop(step);
        if autoac_obs::enabled() && steps > 0 {
            autoac_obs::series("train_loss", epoch as u64, loss_sum / f64::from(steps));
        }

        let scores = eval_val_minibatch(pipe, &schedule, data.num_classes, &mut rng);
        if autoac_obs::enabled() {
            autoac_obs::series("val_micro_f1", epoch as u64, scores.micro_f1);
            autoac_obs::series("val_macro_f1", epoch as u64, scores.macro_f1);
        }
        let val = scores.micro_f1;
        if val > best_val {
            best_val = val;
            best_snap = snapshot(&params);
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
        }

        if let Some(pol) = policy {
            if pol.should_checkpoint(epoch + 1) {
                let state = TrainState {
                    meta: meta.clone(),
                    epochs_done: (epoch + 1) as u64,
                    elapsed_seconds: elapsed_prior + start.elapsed().as_secs_f64(),
                    rng: rng.state(),
                    params: snapshot(&params),
                    opt: opt.export_state(),
                    best_val,
                    best_snap: best_snap.clone(),
                    bad_epochs: bad_epochs as u64,
                };
                save_train_snapshot(pol, epoch + 1, &state.to_snapshot());
            }
            pol.throttle();
        }
    }
    drop(_obs_train);
    restore(&params, &best_snap);
    let seconds = elapsed_prior + start.elapsed().as_secs_f64();
    // Exact whole-graph test evaluation (the sampling approximation only
    // ever touches the training trajectory, never the reported metric).
    let test = eval_classification(pipe, data, &data.split.test, &mut rng);
    ClsOutcome { macro_f1: test.macro_f1, micro_f1: test.micro_f1, seconds, epochs_run }
}

/// Minibatch AutoAC search (classification). Full-batch configs route to
/// the exact legacy [`search_checkpointed`](crate::search::search_checkpointed)
/// loop; minibatch configs run one α step (on a val-cored batch) and one ω
/// step (on a train-cored batch) per epoch, rotating through the schedule.
///
/// Supported clustering modes: [`ClusteringMode::GmoC`] (modularity built
/// over the batch subgraph; cluster ids refreshed incrementally for the
/// missing nodes each batch touches) and [`ClusteringMode::NoCluster`]. The
/// EM variants need whole-graph hidden states and are rejected.
#[allow(clippy::too_many_arguments)]
pub fn search_minibatch(
    data: &Dataset,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    mb: &MinibatchConfig,
    seed: u64,
    cache: &OpCache,
    policy: Option<&CheckpointPolicy>,
) -> SearchOutcome {
    if mb.is_full_batch() {
        let task = crate::search::ClassificationTask::new(data);
        return crate::search::search_checkpointed(
            data,
            crate::pipeline::Backbone::Gcn,
            gnn_cfg,
            ac,
            &task,
            seed,
            cache,
            policy,
        );
    }
    assert!(
        matches!(ac.clustering, ClusteringMode::GmoC | ClusteringMode::NoCluster),
        "search_minibatch supports GmoC and NoCluster clustering only"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let pipe = MinibatchPipeline::new_cached(data, gnn_cfg, CompletionMode::Zero, cache, &mut rng);
    let n_minus = pipe.ops.ctx().num_missing();
    let num_ops = CompletionOp::ALL.len();
    if n_minus == 0 {
        return SearchOutcome {
            assignment: Vec::new(),
            cluster_of: Vec::new(),
            alpha: Matrix::zeros(0, num_ops),
            search_seconds: 0.0,
            gmoc_trace: Vec::new(),
            op_histogram: [0; 4],
        };
    }
    let use_clusters = ac.clustering != ClusteringMode::NoCluster;
    let alpha_rows = if use_clusters { ac.clusters } else { n_minus };

    let mut alpha_init = Matrix::full(alpha_rows, num_ops, 1.0 / num_ops as f32);
    for v in alpha_init.data_mut() {
        *v += rng.gen_range(-0.01..0.01);
    }
    let alpha = Tensor::param(alpha_init);
    let mut alpha_opt =
        Adam::new(vec![alpha.clone()], AdamConfig::with(ac.alpha_lr, ac.alpha_wd));

    // The GCN's penultimate width is static — no whole-graph dry forward
    // needed to size the clustering head.
    let hidden_dim = if gnn_cfg.layers >= 2 { gnn_cfg.hidden } else { gnn_cfg.in_dim };
    let head = ClusterHead::new(hidden_dim, ac.clusters.max(2), &mut rng);

    let mut omega: Vec<Tensor> = pipe.encoder.params();
    omega.extend(pipe.ops.params());
    omega.extend(pipe.gcn.params());
    if matches!(ac.clustering, ClusteringMode::GmoC) {
        omega.extend(head.params());
    }
    let mut omega_opt =
        Adam::new(omega.clone(), AdamConfig::with(ac.train.lr, ac.train.weight_decay));

    let mut cluster_of: Vec<u32> = if use_clusters {
        (0..n_minus).map(|_| rng.gen_range(0..ac.clusters) as u32).collect()
    } else {
        (0..n_minus as u32).collect()
    };

    let labels = data.global_labels();
    let n = data.graph.num_nodes();
    let in_train = membership_mask(n, &data.split.train);
    let in_val = membership_mask(n, &data.split.val);
    let schedule = build_schedule(&pipe, data, mb, &labels, &in_train, &in_val, seed);
    // Modularity contexts for shard batches, built once alongside them.
    let shard_modularity: Vec<ModularityContext> = match (&schedule, ac.clustering) {
        (Schedule::Shards { batches, .. }, ClusteringMode::GmoC) => batches
            .iter()
            .map(|bd| ModularityContext::build(&bd.graph, ac.clusters.max(2)))
            .collect(),
        _ => Vec::new(),
    };

    let mut gmoc_trace = Vec::with_capacity(ac.search_epochs);
    let mut best_val = f32::INFINITY;
    let mut best_snapshot: Option<(Matrix, Vec<u32>)> = None;

    let meta = RunMeta {
        kind: "search-mb".into(),
        graph_fp: data.graph.structural_fingerprint(),
        config_fp: ac.fingerprint(),
        seed,
        segment_fp: mb.segment_fp(schedule.plan_fp()),
    };
    let mut start_epoch = 0usize;
    let mut elapsed_prior = 0.0f64;
    if let Some(pol) = policy {
        if let Some(state) = resume_search_state(pol, &meta, omega.len()) {
            alpha.set_value(state.alpha);
            for (p, m) in omega.iter().zip(state.omega) {
                p.set_value(m);
            }
            alpha_opt.import_state(state.alpha_opt);
            omega_opt.import_state(state.omega_opt);
            cluster_of = state.cluster_of;
            best_val = state.best_val;
            best_snapshot = state.best;
            gmoc_trace = state.gmoc_trace;
            rng = StdRng::from_state(state.rng);
            start_epoch = state.epochs_done as usize;
            elapsed_prior = state.elapsed_seconds;
        }
    }

    let start = Instant::now();
    let _obs_search = autoac_obs::span("search");
    for epoch in start_epoch..ac.search_epochs {
        let _obs_epoch = autoac_obs::span("epoch");
        // This epoch's train-cored batch (and its schedule slot, so shard
        // mode can pick the matching modularity context).
        let sampled_store: Option<BatchData> = match &schedule {
            Schedule::Shards { .. } => None,
            Schedule::Sampled { sampler, train_ids, .. } => {
                let cores = epoch_cores(train_ids, mb, seed, epoch);
                let core = &cores[epoch % cores.len()];
                let batch = sampler.sample(
                    &data.graph,
                    core,
                    mb.fanout,
                    mb.hops,
                    &mut batch_rng(seed, epoch as u64, 0),
                );
                Some(pipe.build_batch(
                    &labels,
                    &in_train,
                    &in_val,
                    batch.nodes,
                    &batch.is_core,
                    batch.graph,
                    None,
                ))
            }
        };
        let (train_bd, slot): (&BatchData, usize) = match (&schedule, &sampled_store) {
            (Schedule::Shards { batches, .. }, _) => {
                let s = epoch % batches.len();
                (&batches[s], s)
            }
            (Schedule::Sampled { .. }, Some(bd)) => (bd, 0),
            (Schedule::Sampled { .. }, None) => unreachable!("sampled batch was just built"),
        };

        // ------- Upper level: α on validation rows -----------------------
        alpha_opt.zero_grad();
        omega_opt.zero_grad();
        if epoch >= ac.omega_warmup {
            let _obs = autoac_obs::span("alpha");
            let val_bd: Option<&BatchData> = match &schedule {
                // Shard batches carry their own core val rows.
                Schedule::Shards { .. } => Some(train_bd),
                Schedule::Sampled { val_batch, .. } => val_batch.as_ref(),
            };
            if let Some(bd) = val_bd.filter(|bd| !bd.val_rows.is_empty()) {
                let x0 = pipe.encoder.encode_subset(&pipe.features, &bd.nodes);
                let (weights_tensor, grad_target) = if ac.discrete {
                    let abar = Tensor::param(prox_c1(&alpha.value()));
                    (abar.clone(), abar)
                } else {
                    (alpha.softmax_rows(), alpha.clone())
                };
                let cluster_rows: Vec<u32> =
                    bd.onehot_rows.iter().map(|&p| cluster_of[p as usize]).collect();
                let per_node = weights_tensor.gather_rows(&cluster_rows);
                let x = complete_mixture_in(&pipe.ops, &bd.ctx, &bd.onehot_rows, &x0, &per_node);
                let fwd = pipe.gcn.forward_on(&bd.ctx.sym_adj, &x, true, &mut rng);
                let loss = fwd.output.cross_entropy_rows(&bd.labels, &bd.val_rows);
                let val = loss.item();
                autoac_obs::series("search_val_loss", epoch as u64, f64::from(val));
                if val < best_val {
                    best_val = val;
                    best_snapshot = Some((alpha.to_matrix(), cluster_of.clone()));
                }
                autoac_check::tape::verify_backward_if_enabled(&loss);
                loss.backward();
                if ac.discrete {
                    if let Some(g) = grad_target.take_grad() {
                        alpha.accum_grad_public_owned(g);
                    }
                }
                alpha_opt.step();
                if ac.discrete {
                    alpha.update_value(|m| *m = prox_c2(m));
                }
            }
        }

        // ------- Lower level: ω on the train batch -----------------------
        omega_opt.zero_grad();
        alpha.zero_grad();
        if !train_bd.loss_rows.is_empty() {
            let _obs = autoac_obs::span("omega");
            let bd = train_bd;
            let x0 = pipe.encoder.encode_subset(&pipe.features, &bd.nodes);
            let x = if ac.discrete {
                let assignment = derive_assignment(&alpha.value(), &cluster_of);
                let sub: Vec<CompletionOp> =
                    bd.onehot_rows.iter().map(|&p| assignment[p as usize]).collect();
                complete_assigned_in(&pipe.ops, &bd.ctx, &bd.onehot_rows, &x0, &sub)
            } else {
                let cluster_rows: Vec<u32> =
                    bd.onehot_rows.iter().map(|&p| cluster_of[p as usize]).collect();
                let per_node = alpha.softmax_rows().gather_rows(&cluster_rows);
                complete_mixture_in(&pipe.ops, &bd.ctx, &bd.onehot_rows, &x0, &per_node)
            };
            let fwd = pipe.gcn.forward_on(&bd.ctx.sym_adj, &x, true, &mut rng);
            let mut loss = fwd.output.cross_entropy_rows(&bd.labels, &bd.loss_rows);
            if matches!(ac.clustering, ClusteringMode::GmoC) {
                let c = head.assign_soft(&fwd.hidden);
                let gmoc = match &schedule {
                    Schedule::Shards { .. } => shard_modularity[slot].loss(&c),
                    Schedule::Sampled { .. } => {
                        ModularityContext::build(&bd.graph, ac.clusters.max(2)).loss(&c)
                    }
                };
                let gmoc_item = gmoc.item();
                gmoc_trace.push(gmoc_item);
                autoac_obs::series("gmoc_loss", epoch as u64, f64::from(gmoc_item));
                loss = loss.add(&gmoc.scale(ac.lambda));
            }
            autoac_check::tape::verify_backward_if_enabled(&loss);
            loss.backward();
            let grad_norm = omega_opt.clip_grad_norm(5.0);
            autoac_obs::series("omega_grad_norm", epoch as u64, f64::from(grad_norm));
            omega_opt.step();

            // Incremental cluster refresh: only the missing nodes this
            // batch touched move (full coverage accrues as the schedule
            // rotates through the graph).
            if matches!(ac.clustering, ClusteringMode::GmoC) {
                let _obs_c = autoac_obs::span("cluster");
                let hm = autoac_tensor::no_grad(|| {
                    head.assign_hard(&fwd.hidden.gather_rows(&bd.ctx.missing))
                });
                for (i, &p) in bd.onehot_rows.iter().enumerate() {
                    cluster_of[p as usize] = hm[i];
                }
            }
        }

        if let Some(pol) = policy {
            if pol.should_checkpoint(epoch + 1) {
                let state = SearchState {
                    meta: meta.clone(),
                    epochs_done: (epoch + 1) as u64,
                    elapsed_seconds: elapsed_prior + start.elapsed().as_secs_f64(),
                    rng: rng.state(),
                    alpha: alpha.to_matrix(),
                    omega: omega.iter().map(Tensor::to_matrix).collect(),
                    alpha_opt: alpha_opt.export_state(),
                    omega_opt: omega_opt.export_state(),
                    cluster_of: cluster_of.clone(),
                    best_val,
                    best: best_snapshot.clone(),
                    gmoc_trace: gmoc_trace.clone(),
                };
                save_search_snapshot(pol, epoch + 1, &state.to_snapshot());
            }
            pol.throttle();
        }
    }
    let search_seconds = elapsed_prior + start.elapsed().as_secs_f64();

    let (final_alpha, final_clusters) = match best_snapshot {
        Some((a, c)) => (a, c),
        None => (alpha.to_matrix(), cluster_of.clone()),
    };
    let assignment = derive_assignment(&final_alpha, &final_clusters);
    let mut op_histogram = [0usize; 4];
    for a in &assignment {
        op_histogram[a.index()] += 1;
    }
    SearchOutcome {
        assignment,
        cluster_of: final_clusters,
        alpha: final_alpha,
        search_seconds,
        gmoc_trace,
        op_histogram,
    }
}

/// Search + minibatch retraining in one call (the bench entry point).
pub fn run_autoac_classification_minibatch(
    data: &Dataset,
    gnn_cfg: &GnnConfig,
    ac: &AutoAcConfig,
    mb: &MinibatchConfig,
    seed: u64,
) -> crate::search::AutoAcClsRun {
    let cache = OpCache::new(&data.graph);
    let search_out = search_minibatch(data, gnn_cfg, ac, mb, seed, &cache, None);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pipe = MinibatchPipeline::new_cached(
        data,
        gnn_cfg,
        CompletionMode::Assigned(search_out.assignment.clone()),
        &cache,
        &mut rng,
    );
    let outcome =
        train_node_classification_minibatch(&pipe, data, &ac.train, mb, seed ^ 0x7e7e, None);
    crate::search::AutoAcClsRun { search: search_out, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Backbone, Pipeline};
    use autoac_data::{presets, synth};

    fn tiny() -> Dataset {
        synth::generate(&presets::imdb(), synth::Scale::Tiny, 0)
    }

    fn cfg(data: &Dataset) -> GnnConfig {
        GnnConfig {
            in_dim: 16,
            hidden: 16,
            out_dim: data.num_classes,
            layers: 2,
            dropout: 0.2,
            ..Default::default()
        }
    }

    #[test]
    fn parse_shards_env_is_strict() {
        assert_eq!(parse_shards_env("4"), Ok(4));
        assert_eq!(parse_shards_env(" 1 "), Ok(1));
        assert!(parse_shards_env("").is_err());
        assert!(parse_shards_env("0").is_err());
        assert!(parse_shards_env("four").is_err());
        assert!(parse_shards_env("-2").is_err());
    }

    #[test]
    fn segment_fp_is_zero_only_for_full_batch() {
        let full = MinibatchConfig::full_batch();
        assert!(full.is_full_batch());
        assert_eq!(full.segment_fp(0), 0);
        let sampled = MinibatchConfig { batch_size: 64, ..Default::default() };
        assert!(!sampled.is_full_batch());
        assert_ne!(sampled.segment_fp(0), 0);
        let sharded = MinibatchConfig { shards: 4, ..Default::default() };
        assert!(sharded.is_sharded());
        assert_ne!(sharded.segment_fp(7), sharded.segment_fp(8), "plan fp must matter");
    }

    #[test]
    fn full_batch_config_is_bitwise_identical_to_legacy_pipeline() {
        let data = tiny();
        let gnn = cfg(&data);
        let tc = TrainConfig { epochs: 4, patience: 4, ..Default::default() };
        let mode = || CompletionMode::Single(CompletionOp::Mean);

        let mut rng = StdRng::seed_from_u64(11);
        let legacy = Pipeline::new(&data, Backbone::Gcn, &gnn, mode(), &mut rng);
        let a = crate::trainer::train_node_classification(&legacy, &data, &tc, 5);

        let mut rng = StdRng::seed_from_u64(11);
        let mbp = MinibatchPipeline::new(&data, &gnn, mode(), &mut rng);
        let b = train_node_classification_minibatch(
            &mbp,
            &data,
            &tc,
            &MinibatchConfig::full_batch(),
            5,
            None,
        );
        assert_eq!(a.micro_f1.to_bits(), b.micro_f1.to_bits());
        assert_eq!(a.macro_f1.to_bits(), b.macro_f1.to_bits());
        assert_eq!(a.epochs_run, b.epochs_run);
    }

    #[test]
    fn sampled_training_learns_and_is_deterministic() {
        let data = tiny();
        let gnn = cfg(&data);
        let tc = TrainConfig { epochs: 25, patience: 25, ..Default::default() };
        let mb = MinibatchConfig {
            batch_size: 24,
            fanout: Some(5),
            ..Default::default()
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pipe = MinibatchPipeline::new(
                &data,
                &gnn,
                CompletionMode::Single(CompletionOp::OneHot),
                &mut rng,
            );
            train_node_classification_minibatch(&pipe, &data, &tc, &mb, seed, None)
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.micro_f1.to_bits(), b.micro_f1.to_bits(), "must be deterministic");
        assert_eq!(a.epochs_run, b.epochs_run);
        let chance = 1.0 / data.num_classes as f64;
        assert!(a.micro_f1 > chance + 0.1, "micro-f1 {:.3} vs chance {chance:.3}", a.micro_f1);
    }

    #[test]
    fn shard_training_runs_and_beats_chance() {
        let data = tiny();
        let gnn = cfg(&data);
        let tc = TrainConfig { epochs: 30, patience: 30, ..Default::default() };
        let mb = MinibatchConfig { shards: 3, ..Default::default() };
        assert!(mb.is_sharded());
        let mut rng = StdRng::seed_from_u64(4);
        let pipe = MinibatchPipeline::new(
            &data,
            &gnn,
            CompletionMode::Single(CompletionOp::Mean),
            &mut rng,
        );
        let out = train_node_classification_minibatch(&pipe, &data, &tc, &mb, 4, None);
        let chance = 1.0 / data.num_classes as f64;
        assert!(out.micro_f1 > chance + 0.1, "micro-f1 {:.3}", out.micro_f1);
    }

    #[test]
    fn minibatch_search_produces_valid_assignment() {
        let data = tiny();
        let gnn = cfg(&data);
        let ac = AutoAcConfig {
            clusters: 4,
            search_epochs: 8,
            omega_warmup: 2,
            train: TrainConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        };
        let mb = MinibatchConfig { batch_size: 24, fanout: Some(5), ..Default::default() };
        let cache = OpCache::new(&data.graph);
        let out = search_minibatch(&data, &gnn, &ac, &mb, 0, &cache, None);
        assert_eq!(out.assignment.len(), data.missing_nodes().len());
        assert!(out.cluster_of.iter().all(|&c| c < 4));
        assert_eq!(out.op_histogram.iter().sum::<usize>(), out.assignment.len());
        assert!(out.alpha.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn minibatch_search_sharded_nocluster_runs() {
        let data = tiny();
        let gnn = cfg(&data);
        let ac = AutoAcConfig {
            clustering: ClusteringMode::NoCluster,
            search_epochs: 5,
            omega_warmup: 1,
            train: TrainConfig { epochs: 3, ..Default::default() },
            ..Default::default()
        };
        let mb = MinibatchConfig { shards: 2, ..Default::default() };
        let cache = OpCache::new(&data.graph);
        let out = search_minibatch(&data, &gnn, &ac, &mb, 1, &cache, None);
        let n_minus = data.missing_nodes().len();
        assert_eq!(out.assignment.len(), n_minus);
        assert_eq!(out.alpha.rows(), n_minus);
    }

    #[test]
    fn end_to_end_minibatch_autoac_beats_chance() {
        let data = tiny();
        let gnn = cfg(&data);
        let ac = AutoAcConfig {
            clusters: 4,
            search_epochs: 6,
            omega_warmup: 2,
            train: TrainConfig { epochs: 40, patience: 40, ..Default::default() },
            ..Default::default()
        };
        let mb = MinibatchConfig { batch_size: 32, fanout: Some(8), ..Default::default() };
        let run = run_autoac_classification_minibatch(&data, &gnn, &ac, &mb, 2);
        let chance = 1.0 / data.num_classes as f64;
        assert!(
            run.outcome.micro_f1 > chance + 0.1,
            "micro-f1 {:.3} vs chance {chance:.3}",
            run.outcome.micro_f1
        );
    }
}
