//! Inference-only forward entry point, split out of the trainer.
//!
//! The training loops in [`crate::trainer`] interleave forwards with
//! optimizer state, checkpoint policies, and early stopping; a serving
//! process needs none of that. [`InferenceModel`] is the read-side
//! counterpart: it reconstructs a pipeline from a
//! [`ServeState`](autoac_ckpt::ServeState) checkpoint — regenerating the
//! dataset from its recipe, replaying the recorded construction RNG so
//! parameter shapes come out identical, restoring the trained leaves —
//! and then **materializes the completed attributes once**. After load,
//! every query batch is a single backbone forward from that fixed input
//! under [`no_grad`], with a fresh RNG seeded from the checkpoint's
//! `infer_seed`.
//!
//! That reseeding is the serving determinism contract: logits depend only
//! on (checkpoint, node id), never on batch composition or request order,
//! so micro-batched responses are bitwise-identical to one-at-a-time
//! responses by construction. `autoac-serve` asserts this end to end.

use autoac_ckpt::{CkptError, RunMeta, ServeState, SERVE_KIND};
use autoac_completion::CompletionOp;
use autoac_data::{presets, synth, Dataset, Scale};
use autoac_graph::OpCache;
use autoac_nn::models::GnnConfig;
use autoac_tensor::{no_grad, Matrix, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pipeline::{Backbone, CompletionMode, ForwardPipe, Pipeline};
use crate::search::{search_cached, AutoAcConfig, ClassificationTask};
use crate::trainer::{restore, snapshot, train_node_classification, ClsOutcome, TrainConfig};

fn malformed(section: &str, reason: &'static str) -> CkptError {
    CkptError::Malformed { section: section.to_string(), reason }
}

/// A loaded, query-ready model: dataset, resident [`OpCache`], backbone,
/// and the materialized completed-attribute block.
pub struct InferenceModel {
    data: Dataset,
    /// Kept alive so reloads over the same graph could share operators and
    /// because the pipeline's CSRs borrow nothing from it (Rc-shared).
    #[allow(dead_code)]
    cache: OpCache,
    pipe: Pipeline,
    /// Materialized completed attributes, `(N, in_dim)`.
    attrs: Matrix,
    /// The same block as a constant tensor — the fixed input of every
    /// inference forward.
    x: Tensor,
    infer_seed: u64,
    state: ServeStateInfo,
}

/// Checkpoint identity surfaced in responses and `/healthz`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStateInfo {
    /// `meta.config_fp` as fixed-width hex — the string clients see in the
    /// `ckpt` response field.
    pub config_fp_hex: String,
    /// Graph structural fingerprint.
    pub graph_fp: u64,
    /// Backbone tag.
    pub backbone: String,
    /// Dataset preset name.
    pub preset: String,
    /// Training epochs completed at export.
    pub epochs_done: u64,
    /// Test macro-F1 at export.
    pub macro_f1: f64,
    /// Test micro-F1 at export.
    pub micro_f1: f64,
}

impl InferenceModel {
    /// Reconstructs a query-ready model from a serving checkpoint. Fails
    /// loudly (never silently serves the wrong model) when the regenerated
    /// graph's fingerprint, the parameter count, or any parameter shape
    /// disagrees with the checkpoint.
    pub fn from_state(state: &ServeState) -> Result<Self, CkptError> {
        state.validate_self()?;
        let spec = presets::by_name(&state.preset)
            .ok_or_else(|| malformed("data.preset", "unknown dataset preset"))?;
        let scale = Scale::parse(&state.scale)
            .ok_or_else(|| malformed("data.scale", "unparseable dataset scale"))?;
        let data = synth::generate(&spec, scale, state.data_seed);
        let graph_fp = data.graph.structural_fingerprint();
        if graph_fp != state.meta.graph_fp {
            return Err(CkptError::Mismatch {
                field: "graph fingerprint",
                found: state.meta.graph_fp,
                expected: graph_fp,
            });
        }
        let backbone = Backbone::parse(&state.backbone)
            .ok_or_else(|| malformed("model.backbone", "unknown backbone tag"))?;
        let cfg = GnnConfig {
            in_dim: state.in_dim as usize,
            hidden: state.hidden as usize,
            out_dim: state.out_dim as usize,
            layers: state.layers as usize,
            heads: state.heads as usize,
            dropout: state.dropout,
            slope: state.slope,
            edge_dim: state.edge_dim as usize,
            beta: state.beta,
        };
        if cfg.out_dim != data.num_classes {
            return Err(malformed("model.dims", "out_dim disagrees with dataset classes"));
        }
        let missing = data.missing_nodes().len();
        if state.assignment.len() != missing {
            return Err(malformed("assignment", "length disagrees with missing-node count"));
        }
        let assignment: Vec<CompletionOp> = state
            .assignment
            .iter()
            .map(|&i| CompletionOp::ALL.get(i as usize).copied())
            .collect::<Option<_>>()
            .ok_or_else(|| malformed("assignment", "op index out of range"))?;

        let cache = OpCache::new(&data.graph);
        // Replaying the recorded construction RNG makes every sampled
        // initial parameter (hence every parameter shape and ordering)
        // identical to the exporting process.
        let mut rng = StdRng::from_state(state.ctor_rng);
        let pipe = Pipeline::new_cached(
            &data,
            backbone,
            &cfg,
            CompletionMode::Assigned(assignment),
            &cache,
            &mut rng,
        );
        let params = pipe.params();
        if params.len() != state.params.len() {
            return Err(malformed("params", "parameter count disagrees with pipeline"));
        }
        for (p, m) in params.iter().zip(&state.params) {
            if p.shape() != m.shape() {
                return Err(malformed("params", "parameter shape disagrees with pipeline"));
            }
        }
        restore(&params, &state.params);

        // Materialize once: completion ops never run again after this.
        let attrs = no_grad(|| pipe.completed_x().to_matrix());
        let x = Tensor::constant(attrs.clone());
        Ok(Self {
            data,
            cache,
            pipe,
            attrs,
            x,
            infer_seed: state.infer_seed,
            state: ServeStateInfo {
                config_fp_hex: format!("{:016x}", state.meta.config_fp),
                graph_fp,
                backbone: state.backbone.clone(),
                preset: state.preset.clone(),
                epochs_done: state.epochs_done,
                macro_f1: state.macro_f1,
                micro_f1: state.micro_f1,
            },
        })
    }

    /// One full-graph inference forward: `(N, C)` logits. A fresh RNG
    /// seeded from `infer_seed` per call (plus the fixed materialized
    /// input) is what makes the result independent of when — and alongside
    /// which other requests — the forward runs.
    pub fn logits(&self) -> Matrix {
        no_grad(|| {
            let mut rng = StdRng::seed_from_u64(self.infer_seed);
            self.pipe.model.forward(&self.x, false, &mut rng).output.to_matrix()
        })
    }

    /// The materialized completed-attribute block, `(N, in_dim)`.
    pub fn attrs(&self) -> &Matrix {
        &self.attrs
    }

    /// Total node count (valid classify/attrs ids are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.data.graph.num_nodes()
    }

    /// Number of classes (logit columns).
    pub fn num_classes(&self) -> usize {
        self.data.num_classes
    }

    /// Checkpoint identity for responses and health reporting.
    pub fn info(&self) -> &ServeStateInfo {
        &self.state
    }
}

/// Recipe for training a model and exporting it as a [`ServeState`] — the
/// write side of the serving checkpoint, used by `serve --train`, the
/// serving benchmark, and tests.
#[derive(Debug, Clone)]
pub struct ServeTrainSpec {
    /// Dataset preset name.
    pub preset: String,
    /// Dataset scale string.
    pub scale: String,
    /// Dataset generation seed.
    pub data_seed: u64,
    /// Backbone to train.
    pub backbone: Backbone,
    /// GNN dimensions (`out_dim` is overwritten with the dataset's class
    /// count).
    pub gnn: GnnConfig,
    /// Optimizer settings for retraining.
    pub train: TrainConfig,
    /// Completion-op search settings; `None` skips the search and assigns
    /// [`CompletionOp::Mean`] everywhere (fast path for smoke tests).
    pub search: Option<AutoAcConfig>,
    /// Run seed (search, construction, and training derive from it).
    pub seed: u64,
}

impl Default for ServeTrainSpec {
    fn default() -> Self {
        Self {
            preset: "imdb".into(),
            scale: "tiny".into(),
            data_seed: 1,
            backbone: Backbone::Gcn,
            gnn: GnnConfig { in_dim: 16, hidden: 16, layers: 2, dropout: 0.0, ..Default::default() },
            train: TrainConfig { epochs: 20, patience: 20, ..Default::default() },
            search: None,
            seed: 7,
        }
    }
}

/// Trains per the spec and packages the result as a self-contained
/// [`ServeState`]. The construction RNG state is captured immediately
/// before pipeline assembly, so [`InferenceModel::from_state`] rebuilds
/// the exact same pipeline.
pub fn train_serve_state(spec: &ServeTrainSpec) -> Result<(ServeState, ClsOutcome), CkptError> {
    let preset = presets::by_name(&spec.preset)
        .ok_or_else(|| malformed("data.preset", "unknown dataset preset"))?;
    let scale = Scale::parse(&spec.scale)
        .ok_or_else(|| malformed("data.scale", "unparseable dataset scale"))?;
    let data = synth::generate(&preset, scale, spec.data_seed);
    if data.num_classes == 0 {
        return Err(malformed("data.preset", "dataset has no classification task"));
    }
    let mut cfg = spec.gnn;
    cfg.out_dim = data.num_classes;

    let cache = OpCache::new(&data.graph);
    let assignment: Vec<CompletionOp> = match &spec.search {
        Some(ac) => {
            let task = ClassificationTask::new(&data);
            search_cached(&data, spec.backbone, &cfg, ac, &task, spec.seed, &cache).assignment
        }
        None => vec![CompletionOp::Mean; data.missing_nodes().len()],
    };

    // Same seed derivation as the full AutoAC run: `^ 0x5eed` constructs,
    // `^ 0x7e7e` trains.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed);
    let ctor_rng = rng.state();
    let pipe = Pipeline::new_cached(
        &data,
        spec.backbone,
        &cfg,
        CompletionMode::Assigned(assignment.clone()),
        &cache,
        &mut rng,
    );
    let outcome = train_node_classification(&pipe, &data, &spec.train, spec.seed ^ 0x7e7e);
    let params = snapshot(&pipe.params());

    let mut state = ServeState {
        meta: RunMeta {
            kind: SERVE_KIND.into(),
            graph_fp: data.graph.structural_fingerprint(),
            config_fp: 0,
            seed: spec.seed,
            segment_fp: 0,
        },
        preset: spec.preset.clone(),
        scale: spec.scale.clone(),
        data_seed: spec.data_seed,
        backbone: spec.backbone.tag().into(),
        in_dim: cfg.in_dim as u64,
        hidden: cfg.hidden as u64,
        out_dim: cfg.out_dim as u64,
        layers: cfg.layers as u64,
        heads: cfg.heads as u64,
        edge_dim: cfg.edge_dim as u64,
        dropout: cfg.dropout,
        slope: cfg.slope,
        beta: cfg.beta,
        assignment: assignment.iter().map(|op| op.index() as u32).collect(),
        ctor_rng,
        infer_seed: spec.seed ^ 0xCAFE,
        params,
        epochs_done: outcome.epochs_run as u64,
        macro_f1: outcome.macro_f1,
        micro_f1: outcome.micro_f1,
    };
    state.meta.config_fp = state.config_fingerprint();
    Ok((state, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(seed: u64) -> ServeTrainSpec {
        ServeTrainSpec {
            train: TrainConfig { epochs: 4, patience: 4, ..Default::default() },
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn exported_state_reloads_and_reproduces_training_process_logits() {
        let (state, outcome) = train_serve_state(&quick_spec(7)).unwrap();
        assert!(outcome.epochs_run > 0);
        // Through the wire format, in a "fresh process".
        let bytes = state.to_snapshot().encode();
        let reloaded =
            ServeState::from_snapshot(&autoac_ckpt::Snapshot::decode(&bytes).unwrap()).unwrap();
        let model = InferenceModel::from_state(&reloaded).unwrap();
        assert!(model.num_nodes() > 0);
        assert_eq!(model.num_classes(), model.logits().cols());

        // Bitwise-identical logits across two loads and across calls.
        let model2 = InferenceModel::from_state(&state).unwrap();
        let (a, b) = (model.logits(), model2.logits());
        assert_eq!(a, b);
        assert_eq!(a, model.logits());
        // And the completed attributes are identical too.
        assert_eq!(model.attrs(), model2.attrs());
    }

    #[test]
    fn different_seeds_export_different_models_with_shared_graph() {
        let (a, _) = train_serve_state(&quick_spec(7)).unwrap();
        let (b, _) = train_serve_state(&quick_spec(8)).unwrap();
        assert_eq!(a.meta.graph_fp, b.meta.graph_fp, "same dataset recipe, same graph");
        assert_ne!(a.meta.config_fp, b.meta.config_fp, "ctor RNG differs");
        let la = InferenceModel::from_state(&a).unwrap().logits();
        let lb = InferenceModel::from_state(&b).unwrap().logits();
        assert_ne!(la, lb, "independently trained models must differ");
    }

    #[test]
    fn tampered_checkpoints_fail_loudly() {
        let (state, _) = train_serve_state(&quick_spec(7)).unwrap();

        let mut wrong_graph = state.clone();
        wrong_graph.data_seed += 1; // regenerates a different graph
        wrong_graph.meta.config_fp = wrong_graph.config_fingerprint();
        assert!(matches!(
            InferenceModel::from_state(&wrong_graph),
            Err(CkptError::Mismatch { field: "graph fingerprint", .. })
        ));

        let mut bad_assign = state.clone();
        bad_assign.assignment.pop();
        bad_assign.meta.config_fp = bad_assign.config_fingerprint();
        assert!(InferenceModel::from_state(&bad_assign).is_err());

        let mut bad_op = state;
        bad_op.assignment[0] = 99;
        bad_op.meta.config_fp = bad_op.config_fingerprint();
        assert!(InferenceModel::from_state(&bad_op).is_err());
    }
}
