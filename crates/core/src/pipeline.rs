//! Pipeline assembly: feature encoder → attribute completion → GNN
//! backbone, plus the backbone factory shared by every experiment.

use autoac_completion::{complete_assigned, CompletionContext, CompletionOp, CompletionOps};
use autoac_data::Dataset;
use autoac_graph::OpCache;
use autoac_nn::models::{Gat, GatneLite, Gcn, GtnLite, Han, HetGnnLite, HetSannLite, HgtLite, Magnn, SimpleHgn};
use autoac_nn::{FeatureEncoder, Forward, Gnn, GnnConfig};
use autoac_tensor::{Matrix, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier-initialized `(in, out)` parameter leaf.
pub fn linear_param(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Tensor {
    Tensor::param(autoac_tensor::init::xavier_uniform(in_dim, out_dim, rng))
}

/// The GNN backbones evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backbone {
    /// GCN baseline.
    Gcn,
    /// GAT baseline.
    Gat,
    /// SimpleHGN (node classification).
    SimpleHgn,
    /// SimpleHGN with L2-normalized output (link prediction).
    SimpleHgnLp,
    /// MAGNN.
    Magnn,
    /// HAN.
    Han,
    /// HetSANN (simplified).
    HetSann,
    /// HGT (simplified).
    Hgt,
    /// HetGNN (simplified).
    HetGnn,
    /// GTN (simplified).
    Gtn,
    /// GATNE (simplified, embedding-based, link prediction).
    Gatne,
}

impl Backbone {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Backbone::Gcn => "GCN",
            Backbone::Gat => "GAT",
            Backbone::SimpleHgn | Backbone::SimpleHgnLp => "SimpleHGN",
            Backbone::Magnn => "MAGNN",
            Backbone::Han => "HAN",
            Backbone::HetSann => "HetSANN",
            Backbone::Hgt => "HGT",
            Backbone::HetGnn => "HetGNN",
            Backbone::Gtn => "GTN",
            Backbone::Gatne => "GATNE",
        }
    }

    /// Stable lowercase tag, unique per variant (unlike [`Self::name`],
    /// which maps both SimpleHGN variants to one display string). Used as
    /// the on-disk identity in serving checkpoints.
    pub fn tag(self) -> &'static str {
        match self {
            Backbone::Gcn => "gcn",
            Backbone::Gat => "gat",
            Backbone::SimpleHgn => "simple_hgn",
            Backbone::SimpleHgnLp => "simple_hgn_lp",
            Backbone::Magnn => "magnn",
            Backbone::Han => "han",
            Backbone::HetSann => "het_sann",
            Backbone::Hgt => "hgt",
            Backbone::HetGnn => "het_gnn",
            Backbone::Gtn => "gtn",
            Backbone::Gatne => "gatne",
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn parse(s: &str) -> Option<Backbone> {
        let all = [
            Backbone::Gcn,
            Backbone::Gat,
            Backbone::SimpleHgn,
            Backbone::SimpleHgnLp,
            Backbone::Magnn,
            Backbone::Han,
            Backbone::HetSann,
            Backbone::Hgt,
            Backbone::HetGnn,
            Backbone::Gtn,
            Backbone::Gatne,
        ];
        all.into_iter().find(|b| b.tag() == s)
    }

    /// Instantiates the backbone for a dataset.
    pub fn build(self, data: &Dataset, cfg: &GnnConfig, rng: &mut StdRng) -> Box<dyn Gnn> {
        self.build_cached(data, cfg, &OpCache::new(&data.graph), rng)
    }

    /// Like [`Backbone::build`], but graph operators the backbone needs are
    /// fetched through `cache` (GCN's `Â` is also what PPNP completion
    /// propagates over, so sharing a cache avoids renormalizing the graph).
    pub fn build_cached(
        self,
        data: &Dataset,
        cfg: &GnnConfig,
        cache: &OpCache,
        rng: &mut StdRng,
    ) -> Box<dyn Gnn> {
        let g = &data.graph;
        match self {
            Backbone::Gcn => Box::new(Gcn::with_adj(cache.sym_norm_adj(g), cfg, rng)),
            Backbone::Gat => Box::new(Gat::new(g, cfg, rng)),
            Backbone::SimpleHgn => Box::new(SimpleHgn::new(g, cfg, rng)),
            Backbone::SimpleHgnLp => Box::new(SimpleHgn::new_for_lp(g, cfg, rng)),
            Backbone::Magnn => Box::new(Magnn::new(g, data.target_type, cfg, 8, rng)),
            Backbone::Han => Box::new(Han::new(g, data.target_type, cfg, 32, rng)),
            Backbone::HetSann => Box::new(HetSannLite::new(g, cfg, rng)),
            Backbone::Hgt => Box::new(HgtLite::new(g, cfg, rng)),
            Backbone::HetGnn => Box::new(HetGnnLite::new(g, cfg, 5, 10, rng)),
            Backbone::Gtn => Box::new(GtnLite::new(g, cfg, rng)),
            Backbone::Gatne => Box::new(GatneLite::new(g, cfg, rng)),
        }
    }
}

/// How the zero rows of the initial embedding block are filled before the
/// backbone runs.
#[derive(Debug, Clone)]
pub enum CompletionMode {
    /// Leave missing rows zero (no completion).
    Zero,
    /// One operation for every `V⁻` node (Table VI/VII single-op rows).
    Single(CompletionOp),
    /// Fixed per-node assignment (AutoAC's result, or random baseline).
    Assigned(Vec<CompletionOp>),
}

/// Uniformly random per-node op assignment (the Random_AC baseline).
pub fn random_assignment(n: usize, rng: &mut StdRng) -> Vec<CompletionOp> {
    (0..n).map(|_| CompletionOp::from_index(rng.gen_range(0..CompletionOp::ALL.len()))).collect()
}

/// Anything the generic trainer can optimize: a forward pass producing
/// hidden + output blocks, and its trainable parameters.
pub trait ForwardPipe {
    /// Runs the full pipeline.
    fn forward(&self, training: bool, rng: &mut StdRng) -> Forward;
    /// All trainable parameters.
    fn params(&self) -> Vec<Tensor>;
}

/// The standard pipeline: encoder → completion (fixed mode) → backbone.
pub struct Pipeline {
    /// Per-type input projections.
    pub encoder: FeatureEncoder,
    /// Completion op parameters and graph operators.
    pub ops: CompletionOps,
    /// The GNN backbone.
    pub model: Box<dyn Gnn>,
    features: Vec<Option<Matrix>>,
    mode: CompletionMode,
}

impl Pipeline {
    /// Assembles the pipeline for a dataset.
    pub fn new(
        data: &Dataset,
        backbone: Backbone,
        cfg: &GnnConfig,
        mode: CompletionMode,
        rng: &mut StdRng,
    ) -> Self {
        Self::new_cached(data, backbone, cfg, mode, &OpCache::new(&data.graph), rng)
    }

    /// Like [`Pipeline::new`], but all normalized graph operators come from
    /// `cache`. Pass the same cache when assembling several pipelines over
    /// one dataset (search then retrain, seed sweeps, baselines) so each CSR
    /// is built once; even a single pipeline benefits, because the
    /// completion context and a GCN backbone share `Â`.
    pub fn new_cached(
        data: &Dataset,
        backbone: Backbone,
        cfg: &GnnConfig,
        mode: CompletionMode,
        cache: &OpCache,
        rng: &mut StdRng,
    ) -> Self {
        let encoder = FeatureEncoder::new(&data.graph, &data.features, cfg.in_dim, rng);
        let ctx = CompletionContext::build_cached(&data.graph, &data.has_attr(), cache);
        let ops = CompletionOps::new(ctx, cfg.in_dim, rng);
        let model = backbone.build_cached(data, cfg, cache, rng);
        Self { encoder, ops, model, features: data.features.clone(), mode }
    }

    /// The `(N, d)` projected-attribute block (zeros at missing rows).
    pub fn x0(&self) -> Tensor {
        self.encoder.encode(&self.features)
    }

    /// The completed initial embedding under the pipeline's mode.
    pub fn completed_x(&self) -> Tensor {
        let x0 = self.x0();
        match &self.mode {
            CompletionMode::Zero => x0,
            CompletionMode::Single(op) => {
                let n = self.ops.ctx().num_missing();
                complete_assigned(&self.ops, &x0, &vec![*op; n])
            }
            CompletionMode::Assigned(assign) => complete_assigned(&self.ops, &x0, assign),
        }
    }

    /// Replaces the completion mode (e.g. after a search).
    pub fn set_mode(&mut self, mode: CompletionMode) {
        self.mode = mode;
    }

    /// The current completion mode.
    pub fn mode(&self) -> &CompletionMode {
        &self.mode
    }
}

impl ForwardPipe for Pipeline {
    fn forward(&self, training: bool, rng: &mut StdRng) -> Forward {
        self.model.forward(&self.completed_x(), training, rng)
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.encoder.params();
        match &self.mode {
            CompletionMode::Zero => {}
            CompletionMode::Single(op) => p.extend(self.ops.op_params(*op)),
            CompletionMode::Assigned(assign) => {
                for &op in &CompletionOp::ALL {
                    if assign.contains(&op) {
                        p.extend(self.ops.op_params(op));
                    }
                }
            }
        }
        p.extend(self.model.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_data::{presets, synth};
    use rand::SeedableRng;

    fn tiny_imdb() -> Dataset {
        synth::generate(&presets::imdb(), synth::Scale::Tiny, 0)
    }

    #[test]
    fn all_backbones_build_and_run() {
        let data = tiny_imdb();
        let cfg = GnnConfig {
            in_dim: 16,
            hidden: 16,
            out_dim: data.num_classes,
            layers: 2,
            heads: 2,
            dropout: 0.0,
            ..Default::default()
        };
        for backbone in [
            Backbone::Gcn,
            Backbone::Gat,
            Backbone::SimpleHgn,
            Backbone::Magnn,
            Backbone::Han,
            Backbone::HetSann,
            Backbone::Hgt,
            Backbone::HetGnn,
            Backbone::Gtn,
            Backbone::Gatne,
        ] {
            let mut rng = StdRng::seed_from_u64(0);
            let pipe = Pipeline::new(
                &data,
                backbone,
                &cfg,
                CompletionMode::Single(CompletionOp::OneHot),
                &mut rng,
            );
            let f = pipe.forward(false, &mut rng);
            assert_eq!(
                f.output.shape(),
                (data.graph.num_nodes(), data.num_classes),
                "{}",
                backbone.name()
            );
            assert!(f.output.value().check_finite().is_ok(), "{}", backbone.name());
        }
    }

    #[test]
    fn zero_mode_leaves_missing_rows_zero() {
        let data = tiny_imdb();
        let cfg = GnnConfig { in_dim: 8, out_dim: data.num_classes, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let pipe = Pipeline::new(&data, Backbone::Gcn, &cfg, CompletionMode::Zero, &mut rng);
        let x = pipe.completed_x();
        let v = x.value();
        for &m in &data.missing_nodes()[..10.min(data.missing_nodes().len())] {
            assert!(v.row(m as usize).iter().all(|&z| z == 0.0));
        }
    }

    #[test]
    fn single_mode_fills_missing_rows() {
        let data = tiny_imdb();
        let cfg = GnnConfig { in_dim: 8, out_dim: data.num_classes, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let pipe = Pipeline::new(
            &data,
            Backbone::Gcn,
            &cfg,
            CompletionMode::Single(CompletionOp::OneHot),
            &mut rng,
        );
        let x = pipe.completed_x();
        let v = x.value();
        let missing = data.missing_nodes();
        let nonzero = missing
            .iter()
            .filter(|&&m| v.row(m as usize).iter().any(|&z| z != 0.0))
            .count();
        assert_eq!(nonzero, missing.len(), "all missing rows must be filled");
    }

    #[test]
    fn params_depend_on_mode() {
        let data = tiny_imdb();
        let cfg = GnnConfig { in_dim: 8, out_dim: data.num_classes, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let mut pipe =
            Pipeline::new(&data, Backbone::Gcn, &cfg, CompletionMode::Zero, &mut rng);
        let zero_params = pipe.params().len();
        pipe.set_mode(CompletionMode::Single(CompletionOp::Mean));
        let single_params = pipe.params().len();
        assert_eq!(single_params, zero_params + 1, "mean op adds one W");
    }

    #[test]
    fn random_assignment_covers_ops() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_assignment(400, &mut rng);
        for op in CompletionOp::ALL {
            assert!(a.contains(&op), "{op} never sampled");
        }
    }
}
