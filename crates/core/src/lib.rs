//! # autoac-core
//!
//! The paper's primary contribution: AutoAC's differentiable
//! attribute-completion search — continuous relaxation over the op search
//! space, bi-level optimization (Eq. 6/12) with NASP-style discrete
//! constraints solved by proximal iteration (Algorithm 1), and the
//! auxiliary modularity-clustering task (Eq. 9–11) — plus every baseline it
//! is compared against (HGNN-AC, single-op and random completion) and the
//! shared training machinery.
//!
//! ```no_run
//! use autoac_core::{run_autoac_classification, AutoAcConfig, Backbone};
//! use autoac_data::{presets, synth};
//! use autoac_nn::GnnConfig;
//!
//! let data = synth::generate(&presets::imdb(), synth::Scale::Small, 0);
//! let gnn = GnnConfig { out_dim: data.num_classes, ..Default::default() };
//! let run = run_autoac_classification(
//!     &data, Backbone::SimpleHgn, &gnn, &AutoAcConfig::default(), 0);
//! println!("Micro-F1 {:.4}", run.outcome.micro_f1);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod hgca;
pub mod hgnnac;
pub mod infer;
pub mod minibatch;
pub mod pipeline;
pub mod proximal;
pub mod sampler;
pub mod search;
pub mod trainer;

pub use hgca::{pretrain_hgca, run_hgca_classification, HgcaConfig, HgcaPipe};
pub use infer::{train_serve_state, InferenceModel, ServeStateInfo, ServeTrainSpec};
pub use hgnnac::{run_hgnnac_classification, HgnnAcConfig, HgnnAcPipe};
pub use minibatch::{
    parse_shards_env, run_autoac_classification_minibatch, search_minibatch,
    train_node_classification_minibatch, MinibatchConfig, MinibatchPipeline,
};
pub use pipeline::{random_assignment, Backbone, CompletionMode, ForwardPipe, Pipeline};
pub use sampler::{batch_rng, NeighborSampler, SampledBatch};
pub use search::{
    derive_assignment, run_autoac_classification, run_autoac_classification_checkpointed,
    run_autoac_link_prediction, run_autoac_link_prediction_checkpointed, search,
    search_checkpointed, AutoAcClsRun, AutoAcConfig, AutoAcLpRun, ClassificationTask,
    ClusteringMode, LinkPredictionTask, SearchOutcome,
};
pub use trainer::{
    eval_classification, eval_link_prediction, train_link_prediction,
    train_link_prediction_checkpointed, train_node_classification,
    train_node_classification_checkpointed, ClsOutcome, LpOutcome, TrainConfig,
};
