//! Auxiliary unsupervised node clustering (paper §IV-D).
//!
//! The assignment matrix `C = softmax(H W_c)` is trained jointly with the
//! GNN by minimizing
//! `L_GmoC = −(1/2|E|)·Tr(Cᵀ B C) + (√M/|V|)·‖Σᵢ Cᵢ‖_F`
//! where `B = A − d dᵀ / 2|E|` is the modularity matrix. `B` is never
//! materialized: the adjacency term is accumulated edge-wise
//! (`Tr(CᵀAC) = Σ_{(i,j)∈E} ⟨Cᵢ, Cⱼ⟩`, both directions) and the degree term
//! factorizes through `dᵀC`.
//!
//! Also provides the k-means (EM) clustering baselines of Figure 3.

use autoac_graph::HeteroGraph;
use autoac_tensor::{Matrix, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

use crate::pipeline::linear_param;

/// Precomputed graph quantities for the modularity loss.
pub struct ModularityContext {
    /// Directed edge endpoints (both directions of each stored edge).
    src: Vec<u32>,
    dst: Vec<u32>,
    /// Node degrees as a `(1, N)` row vector.
    degrees: Matrix,
    /// `2|E|` (sum of degrees).
    two_m: f32,
    /// `√M / |V|` collapse-regularization coefficient.
    collapse_coeff: f32,
    /// Number of clusters M.
    pub num_clusters: usize,
}

impl ModularityContext {
    /// Builds the context for a graph and cluster count.
    pub fn build(graph: &HeteroGraph, num_clusters: usize) -> Self {
        assert!(num_clusters >= 2, "modularity: need at least 2 clusters");
        let n = graph.num_nodes();
        let mut src = Vec::with_capacity(2 * graph.num_edges());
        let mut dst = Vec::with_capacity(2 * graph.num_edges());
        for (_, s, d) in graph.all_edges() {
            src.push(s);
            dst.push(d);
            src.push(d);
            dst.push(s);
        }
        let deg = graph.undirected_degrees();
        let degrees =
            Matrix::from_vec(1, n, deg.iter().map(|&d| d as f32).collect());
        let two_m = (2 * graph.num_edges()) as f32;
        Self {
            src,
            dst,
            degrees,
            two_m: two_m.max(1.0),
            collapse_coeff: (num_clusters as f32).sqrt() / n as f32,
            num_clusters,
        }
    }

    /// The differentiable clustering loss `L_GmoC` for a soft assignment
    /// `C` of shape `(N, M)`.
    pub fn loss(&self, c: &Tensor) -> Tensor {
        let (n, m) = c.shape();
        assert_eq!(m, self.num_clusters, "modularity: cluster count mismatch");
        assert_eq!(n, self.degrees.cols(), "modularity: node count mismatch");
        // Tr(CᵀAC) = Σ over directed edges ⟨C_s, C_d⟩.
        let cs = c.gather_rows(&self.src);
        let cd = c.gather_rows(&self.dst);
        let adj_term = cs.rowwise_dot(&cd).sum();
        // Tr(Cᵀ d dᵀ C)/2|E| = ‖dᵀC‖² / 2|E|.
        let dt_c = Tensor::constant(self.degrees.clone()).matmul(c); // (1, M)
        let deg_term = dt_c.square().sum().scale(1.0 / self.two_m);
        let modularity = adj_term.sub(&deg_term).scale(-1.0 / self.two_m);
        // Collapse regularization: √M/|V| · ‖Σᵢ Cᵢ‖_F.
        let collapse = c.sum_cols().frob().scale(self.collapse_coeff);
        modularity.add(&collapse)
    }

    /// Non-differentiable modularity `Q` of a hard assignment (validation).
    pub fn hard_modularity(&self, assign: &[usize]) -> f64 {
        let mut q = 0.0f64;
        for (&s, &d) in self.src.iter().zip(&self.dst) {
            if assign[s as usize] == assign[d as usize] {
                q += 1.0;
            }
        }
        // Degree expectation term.
        let mut cluster_deg = vec![0.0f64; self.num_clusters];
        for (v, &a) in assign.iter().enumerate() {
            cluster_deg[a] += self.degrees.get(0, v) as f64;
        }
        let two_m = self.two_m as f64;
        let expected: f64 = cluster_deg.iter().map(|&d| d * d).sum::<f64>() / two_m;
        (q - expected) / two_m
    }
}

/// The trainable clustering head: `C = softmax(H W_c)`.
pub struct ClusterHead {
    w: Tensor,
}

impl ClusterHead {
    /// Xavier-initialized head from hidden dim to `M` clusters.
    pub fn new(hidden: usize, num_clusters: usize, rng: &mut StdRng) -> Self {
        Self { w: linear_param(hidden, num_clusters, rng) }
    }

    /// Soft assignment `(N, M)`.
    pub fn assign_soft(&self, hidden: &Tensor) -> Tensor {
        hidden.matmul(&self.w).softmax_rows()
    }

    /// Hard assignment (argmax row) per node.
    pub fn assign_hard(&self, hidden: &Tensor) -> Vec<u32> {
        autoac_tensor::no_grad(|| {
            let c = self.assign_soft(hidden);
            let v = c.value();
            (0..v.rows()).map(|r| v.argmax_row(r) as u32).collect()
        })
    }

    /// The trainable parameter.
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.w.clone()]
    }
}

/// Plain k-means over matrix rows (the EM baseline of Figure 3).
/// Returns per-row cluster ids. Deterministic in `rng`.
pub fn kmeans(rows: &Matrix, k: usize, iters: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = rows.rows();
    assert!(k >= 1, "kmeans: k must be positive");
    if n == 0 {
        return Vec::new();
    }
    let d = rows.cols();
    // k-means++-lite init: random distinct rows.
    let mut centers = Matrix::zeros(k, d);
    for c in 0..k {
        let pick = rng.gen_range(0..n);
        centers.row_mut(c).copy_from_slice(rows.row(pick));
    }
    let mut assign = vec![0u32; n];
    for _ in 0..iters {
        // E-step.
        let mut changed = false;
        for (i, slot) in assign.iter_mut().enumerate() {
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let dist: f32 = rows
                    .row(i)
                    .iter()
                    .zip(centers.row(c))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = c as u32;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        // M-step.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &a) in assign.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            for (s, &v) in sums.row_mut(c).iter_mut().zip(rows.row(i)) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f32;
                for (ctr, &s) in centers.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *ctr = s * inv;
                }
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Two 3-cliques joined by one edge — the canonical modular graph.
    fn two_cliques() -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let t = b.add_node_type("n", 6);
        let e = b.add_edge_type("n-n", t, t);
        for &(s, d) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)] {
            b.add_edge(e, s, d);
        }
        b.build()
    }

    #[test]
    fn hard_modularity_prefers_true_communities() {
        let ctx = ModularityContext::build(&two_cliques(), 2);
        let good = ctx.hard_modularity(&[0, 0, 0, 1, 1, 1]);
        let bad = ctx.hard_modularity(&[0, 1, 0, 1, 0, 1]);
        let trivial = ctx.hard_modularity(&[0, 0, 0, 0, 0, 0]);
        assert!(good > 0.3, "good partition Q = {good}");
        assert!(good > bad, "good {good} vs shuffled {bad}");
        assert!(good > trivial, "good {good} vs all-in-one {trivial}");
    }

    #[test]
    fn soft_loss_agrees_with_hard_modularity_direction() {
        let ctx = ModularityContext::build(&two_cliques(), 2);
        let good = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.0, 1.0],
            &[0.0, 1.0],
        ]));
        let bad = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
        ]));
        // Lower loss = better clustering (loss = −Q + collapse; collapse is
        // equal for both balanced assignments).
        assert!(ctx.loss(&good).item() < ctx.loss(&bad).item());
    }

    #[test]
    fn collapse_regularizer_penalizes_single_cluster() {
        let ctx = ModularityContext::build(&two_cliques(), 2);
        let collapsed = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
        ]));
        let balanced = Tensor::constant(Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.0, 1.0],
            &[0.0, 1.0],
        ]));
        // The all-in-one assignment has Q ≈ 0 and maximal collapse penalty.
        assert!(ctx.loss(&collapsed).item() > ctx.loss(&balanced).item());
    }

    #[test]
    fn gradient_descent_on_loss_recovers_communities() {
        let g = two_cliques();
        let ctx = ModularityContext::build(&g, 2);
        let mut rng = StdRng::seed_from_u64(7);
        // Direct soft-assignment logits as parameters.
        let logits = Tensor::param(autoac_tensor::init::random_normal(6, 2, 0.1, &mut rng));
        let mut opt = autoac_tensor::Adam::new(
            vec![logits.clone()],
            autoac_tensor::AdamConfig::with(0.1, 0.0),
        );
        for _ in 0..200 {
            opt.zero_grad();
            let loss = ctx.loss(&logits.softmax_rows());
            autoac_check::tape::verify_backward_if_enabled(&loss);
            loss.backward();
            opt.step();
        }
        let c = logits.softmax_rows();
        let v = c.value();
        let assign: Vec<usize> = (0..6).map(|r| v.argmax_row(r)).collect();
        // Both cliques internally consistent and different from each other.
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[1], assign[2]);
        assert_eq!(assign[3], assign[4]);
        assert_eq!(assign[4], assign[5]);
        assert_ne!(assign[0], assign[3], "cliques must split: {assign:?}");
    }

    #[test]
    fn cluster_head_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let head = ClusterHead::new(8, 4, &mut rng);
        let h = Tensor::constant(autoac_tensor::init::random_normal(5, 8, 1.0, &mut rng));
        let soft = head.assign_soft(&h);
        assert_eq!(soft.shape(), (5, 4));
        for r in 0..5 {
            let s: f32 = soft.value().row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let hard = head.assign_hard(&h);
        assert_eq!(hard.len(), 5);
        assert!(hard.iter().all(|&c| c < 4));
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Matrix::zeros(20, 2);
        for i in 0..10 {
            rows.set(i, 0, 10.0 + (i as f32) * 0.01);
        }
        for i in 10..20 {
            rows.set(i, 1, 10.0 + (i as f32) * 0.01);
        }
        let assign = kmeans(&rows, 2, 50, &mut rng);
        let first = assign[0];
        assert!(assign[..10].iter().all(|&a| a == first));
        assert!(assign[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn kmeans_empty_input() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(kmeans(&Matrix::zeros(0, 3), 2, 10, &mut rng).is_empty());
    }
}
