//! Proximal projections for the constrained completion parameters
//! (paper §IV-C): `C₁ = {α : ‖α‖₀ = 1}` (one active op per row) and
//! `C₂ = {α : 0 ≤ αᵢ ≤ 1}` (box constraint).

use autoac_tensor::Matrix;

/// `prox_C1`: row-wise projection onto one-hot vectors — keeps each row's
/// maximum entry as 1, zeroing the rest (ties break to the lowest index).
pub fn prox_c1(alpha: &Matrix) -> Matrix {
    let _obs = autoac_obs::span("prox_c1");
    let mut out = Matrix::zeros(alpha.rows(), alpha.cols());
    for r in 0..alpha.rows() {
        out.set(r, alpha.argmax_row(r), 1.0);
    }
    out
}

/// `prox_C2`: elementwise clamp onto `[0, 1]`.
pub fn prox_c2(alpha: &Matrix) -> Matrix {
    let _obs = autoac_obs::span("prox_c2");
    alpha.map(|v| v.clamp(0.0, 1.0))
}

/// Row-wise argmax (the discrete operation choice per row).
pub fn argmax_rows(alpha: &Matrix) -> Vec<usize> {
    (0..alpha.rows()).map(|r| alpha.argmax_row(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prox_c1_selects_row_maxima() {
        let a = Matrix::from_rows(&[&[0.1, 0.7, 0.2], &[0.9, 0.05, 0.05]]);
        let p = prox_c1(&a);
        assert_eq!(p, Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]));
    }

    #[test]
    fn prox_c1_rows_are_one_hot() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[-1.0, -2.0]]);
        let p = prox_c1(&a);
        for r in 0..p.rows() {
            let ones = p.row(r).iter().filter(|&&v| v == 1.0).count();
            let zeros = p.row(r).iter().filter(|&&v| v == 0.0).count();
            assert_eq!((ones, zeros), (1, p.cols() - 1), "row {r} not one-hot");
        }
    }

    #[test]
    fn prox_c2_clamps() {
        let a = Matrix::from_rows(&[&[-0.5, 0.5], &[1.5, 1.0]]);
        assert_eq!(prox_c2(&a), Matrix::from_rows(&[&[0.0, 0.5], &[1.0, 1.0]]));
    }

    #[test]
    fn proposition1_composition() {
        // prox_C(z) = prox_C2(prox_C1(z)): for any z the composition is a
        // one-hot row, which lies in C = C1 ∩ C2.
        let z = Matrix::from_rows(&[&[2.5, -3.0, 0.1]]);
        let p = prox_c2(&prox_c1(&z));
        assert_eq!(p, Matrix::from_rows(&[&[1.0, 0.0, 0.0]]));
    }

    #[test]
    fn argmax_rows_matches_prox_c1() {
        let a = Matrix::from_rows(&[&[0.1, 0.7, 0.2], &[0.9, 0.05, 0.05]]);
        assert_eq!(argmax_rows(&a), vec![1, 0]);
    }
}
