//! Deterministic neighbor-sampled minibatches for 100×-scale training.
//!
//! A [`NeighborSampler`] draws GraphSAGE-style batches: a core set of target
//! nodes is expanded by `hops` rounds of (optionally fanout-capped) neighbor
//! selection, and the batch graph is the *induced* subgraph over the
//! selected nodes — every stored edge whose endpoints were both selected,
//! with its edge type intact, so per-type neighborhoods survive sampling.
//!
//! Determinism contract: batch composition is a pure function of the RNG
//! handed to [`NeighborSampler::sample`]. The trainers derive that RNG from
//! `(seed, epoch, batch)` via [`batch_rng`], so the schedule never touches
//! the training RNG stream — dropout draws are unchanged whether a run is
//! fresh or resumed mid-epoch-schedule.

use autoac_graph::{Adjacency, EdgeTypeId, HeteroGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — decorrelates structured `(seed, epoch, batch)`
/// triples into independent RNG seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-batch sampling RNG: seeded from `(seed, epoch, batch)` so every
/// batch is reproducible in isolation (resume re-derives it exactly).
pub fn batch_rng(seed: u64, epoch: u64, batch: u64) -> StdRng {
    let mixed = splitmix64(seed ^ splitmix64(epoch ^ splitmix64(batch)));
    StdRng::seed_from_u64(mixed)
}

/// One sampled minibatch: the selected nodes (sorted global ids), which of
/// them are core (loss-bearing) nodes, and the induced heterogeneous
/// subgraph in batch-local ids.
#[derive(Debug, Clone)]
pub struct SampledBatch {
    /// Selected global node ids, sorted ascending (= batch-local id order).
    pub nodes: Vec<u32>,
    /// `is_core[i]` ⇔ `nodes[i]` was in the requested core set.
    pub is_core: Vec<bool>,
    /// Induced subgraph over `nodes`, same node/edge types as the parent.
    pub graph: HeteroGraph,
}

impl SampledBatch {
    /// Batch-local id of global node `v`, if selected.
    pub fn sub_of(&self, v: u32) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Global id of batch-local node `i`.
    pub fn global_of(&self, i: usize) -> u32 {
        self.nodes[i]
    }

    /// Gathers a per-node value vector of the parent graph into batch-local
    /// order.
    pub fn gather_values<T: Clone>(&self, parent: &[T]) -> Vec<T> {
        self.nodes.iter().map(|&v| parent[v as usize].clone()).collect()
    }
}

/// Neighbor sampler over one heterogeneous graph.
///
/// Construction builds a per-node *source-incidence* index over the stored
/// edges (node → the `(edge_type, dst)` pairs it sources), so extracting a
/// batch's induced edge set costs `O(Σ out-degree of selected nodes)` — it
/// never rescans the full edge list the way one-shot shard extraction does.
pub struct NeighborSampler {
    adj: Adjacency,
    inc_indptr: Vec<usize>,
    // (edge type, stored dst, position within its type), grouped by src.
    // The position lets `induce` re-emit edges in stored order, so inducing
    // over all nodes reproduces the parent's structural fingerprint exactly.
    inc_edges: Vec<(u32, u32, u32)>,
    num_nodes: usize,
}

impl NeighborSampler {
    /// Builds the sampler's adjacency and incidence indices (one `O(N + E)`
    /// pass; batches afterwards touch only what they select).
    pub fn new(g: &HeteroGraph) -> Self {
        let _obs = autoac_obs::span("sampler_build");
        let n = g.num_nodes();
        let adj = Adjacency::build(g);
        let mut counts = vec![0usize; n + 1];
        for (_, s, _) in g.all_edges() {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let inc_indptr = counts.clone();
        let mut cursor = counts;
        let mut inc_edges = vec![(0u32, 0u32, 0u32); g.num_edges()];
        let mut pos_in_type = vec![0u32; g.num_edge_types()];
        for (et, s, d) in g.all_edges() {
            let slot = cursor[s as usize];
            inc_edges[slot] = (et as u32, d, pos_in_type[et]);
            pos_in_type[et] += 1;
            cursor[s as usize] += 1;
        }
        Self { adj, inc_indptr, inc_edges, num_nodes: n }
    }

    /// Number of nodes in the parent graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Draws one minibatch: `core` nodes plus `hops` rounds of neighbor
    /// expansion, each node contributing at most `fanout` sampled neighbors
    /// per round (`None` = all neighbors). The batch graph is the induced
    /// subgraph over the selection.
    ///
    /// `core` may be in any order and must be duplicate-free; the RNG should
    /// come from [`batch_rng`].
    pub fn sample(
        &self,
        g: &HeteroGraph,
        core: &[u32],
        fanout: Option<usize>,
        hops: usize,
        rng: &mut StdRng,
    ) -> SampledBatch {
        assert!(!core.is_empty(), "sampler: empty core set");
        let _obs = autoac_obs::span("sample_batch");
        let mut selected: Vec<u32> = core.to_vec();
        selected.sort_unstable();
        debug_assert!(
            selected.windows(2).all(|w| w[0] < w[1]),
            "sampler: core set has duplicates"
        );
        let core_sorted = selected.clone();
        let mut seen: std::collections::HashSet<u32> = selected.iter().copied().collect();
        let mut frontier = selected.clone();
        let mut scratch: Vec<u32> = Vec::new();
        for _ in 0..hops {
            let mut next = Vec::new();
            // The frontier is iterated in sorted id order, so the sequence
            // of RNG draws — hence the batch — is independent of how the
            // caller ordered the core set.
            for &v in &frontier {
                let neigh = self.adj.neighbors(v as usize);
                let take = fanout.unwrap_or(neigh.len()).min(neigh.len());
                if take == neigh.len() {
                    for &u in neigh {
                        if seen.insert(u) {
                            next.push(u);
                        }
                    }
                } else {
                    // Partial Fisher–Yates: the first `take` slots become a
                    // uniform sample without replacement.
                    scratch.clear();
                    scratch.extend_from_slice(neigh);
                    for i in 0..take {
                        let j = rng.gen_range(i..scratch.len());
                        scratch.swap(i, j);
                        let u = scratch[i];
                        if seen.insert(u) {
                            next.push(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            selected.extend_from_slice(&next);
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        selected.sort_unstable();
        let is_core: Vec<bool> =
            selected.iter().map(|&v| core_sorted.binary_search(&v).is_ok()).collect();
        let graph = self.induce(g, &selected);
        autoac_obs::counter_add("sampler_nodes", selected.len() as u64);
        autoac_obs::counter_add("sampler_edges", graph.num_edges() as u64);
        SampledBatch { nodes: selected, is_core, graph }
    }

    /// Induced subgraph over sorted-unique `nodes`, via the source-incidence
    /// index (cost `O(|nodes| log |nodes| + Σ out-deg)`).
    fn induce(&self, g: &HeteroGraph, nodes: &[u32]) -> HeteroGraph {
        let mut b = HeteroGraph::builder();
        let mut cursor = 0usize;
        for t in 0..g.num_node_types() {
            let range = g.nodes_of_type(t);
            let start = cursor;
            while cursor < nodes.len() && (nodes[cursor] as usize) < range.end {
                cursor += 1;
            }
            b.add_node_type(g.node_type_name(t), cursor - start);
        }
        assert_eq!(cursor, nodes.len(), "sampler: node id out of range");
        for e in 0..g.num_edge_types() {
            let et = g.edge_type(e);
            b.add_edge_type(et.name.clone(), et.src, et.dst);
        }
        // Collect per edge type, then sort by stored position: induced
        // edges keep the parent's storage order, so inducing over all nodes
        // reproduces the parent graph bit-for-bit (fingerprint included).
        let sub_of = |v: u32| nodes.binary_search(&v).ok();
        let mut per_type: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); g.num_edge_types()];
        for (i, &v) in nodes.iter().enumerate() {
            let lo = self.inc_indptr[v as usize];
            let hi = self.inc_indptr[v as usize + 1];
            for &(et, d, pos) in &self.inc_edges[lo..hi] {
                if let Some(j) = sub_of(d) {
                    per_type[et as usize].push((pos, i as u32, j as u32));
                }
            }
        }
        for (et, mut edges) in per_type.into_iter().enumerate() {
            edges.sort_unstable_by_key(|&(pos, _, _)| pos);
            for (_, i, j) in edges {
                b.add_edge(et as EdgeTypeId, i, j);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoac_data::{presets, synth};

    fn tiny() -> HeteroGraph {
        synth::generate(&presets::imdb(), synth::Scale::Tiny, 0).graph
    }

    #[test]
    fn full_expansion_of_everything_is_the_whole_graph() {
        let g = tiny();
        let sampler = NeighborSampler::new(&g);
        let core: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut rng = batch_rng(0, 0, 0);
        let batch = sampler.sample(&g, &core, None, 1, &mut rng);
        assert_eq!(batch.nodes.len(), g.num_nodes());
        assert_eq!(batch.graph.num_edges(), g.num_edges());
        assert_eq!(
            batch.graph.structural_fingerprint(),
            g.structural_fingerprint(),
            "induced graph over all nodes must be the graph itself"
        );
        assert!(batch.is_core.iter().all(|&c| c));
    }

    #[test]
    fn same_coordinates_reproduce_the_same_batch() {
        let g = tiny();
        let sampler = NeighborSampler::new(&g);
        let core = [0u32, 5, 9];
        let a = sampler.sample(&g, &core, Some(3), 2, &mut batch_rng(7, 3, 1));
        let b = sampler.sample(&g, &core, Some(3), 2, &mut batch_rng(7, 3, 1));
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(
            a.graph.structural_fingerprint(),
            b.graph.structural_fingerprint()
        );
        let c = sampler.sample(&g, &core, Some(3), 2, &mut batch_rng(7, 3, 2));
        // A different batch index draws a different neighborhood (with
        // overwhelming probability on this graph).
        assert!(a.nodes != c.nodes || a.graph.num_edges() != c.graph.num_edges());
    }

    #[test]
    fn core_order_does_not_change_the_batch() {
        let g = tiny();
        let sampler = NeighborSampler::new(&g);
        let a = sampler.sample(&g, &[9, 0, 5], Some(2), 2, &mut batch_rng(1, 0, 0));
        let b = sampler.sample(&g, &[0, 5, 9], Some(2), 2, &mut batch_rng(1, 0, 0));
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn fanout_caps_expansion() {
        let g = tiny();
        let sampler = NeighborSampler::new(&g);
        let mut rng = batch_rng(0, 1, 0);
        let capped = sampler.sample(&g, &[0], Some(2), 1, &mut rng);
        // One core node with fanout 2 and one hop selects at most 3 nodes.
        assert!(capped.nodes.len() <= 3, "selected {:?}", capped.nodes);
        assert_eq!(capped.is_core.iter().filter(|&&c| c).count(), 1);
    }

    #[test]
    fn induced_edges_keep_their_types() {
        let g = tiny();
        let sampler = NeighborSampler::new(&g);
        let mut rng = batch_rng(3, 0, 0);
        let batch = sampler.sample(&g, &[0, 1, 2, 3], None, 1, &mut rng);
        assert_eq!(batch.graph.num_node_types(), g.num_node_types());
        assert_eq!(batch.graph.num_edge_types(), g.num_edge_types());
        // Every induced edge corresponds to a stored parent edge of the
        // same type between the mapped endpoints.
        for (et, s, d) in batch.graph.all_edges() {
            let gs = batch.global_of(s as usize);
            let gd = batch.global_of(d as usize);
            assert!(
                g.edges_of_type(et).contains(&(gs, gd)),
                "edge ({gs},{gd}) of type {et} not in parent"
            );
        }
    }
}
