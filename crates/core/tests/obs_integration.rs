//! End-to-end obs integration: a full search + retrain run with obs on
//! must (a) produce bitwise-identical training results to an obs-off run,
//! (b) record the span hierarchy and trajectory series the exporters
//! promise, and (c) emit JSONL that the hand-rolled JSON parser (which
//! obs itself cannot depend on) accepts line by line.
//!
//! Everything lives in one test: obs drains are process-global, and one
//! sequential body keeps the two runs and the report inspection ordered.

use autoac_core::{
    run_autoac_classification, AutoAcConfig, Backbone, TrainConfig,
};
use autoac_data::{presets, synth, Dataset, Scale};
use autoac_nn::GnnConfig;

fn tiny(seed: u64) -> Dataset {
    synth::generate(&presets::imdb(), Scale::Tiny, seed)
}

#[test]
fn obs_on_run_is_bitwise_identical_and_fully_exported() {
    let data = tiny(7);
    let gnn_cfg = GnnConfig {
        in_dim: 16,
        hidden: 16,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.2,
        ..Default::default()
    };
    let ac = AutoAcConfig {
        clusters: 4,
        search_epochs: 5,
        omega_warmup: 1,
        train: TrainConfig { epochs: 4, ..Default::default() },
        ..Default::default()
    };
    const SEED: u64 = 42;

    let baseline = autoac_obs::with_obs(false, || {
        run_autoac_classification(&data, Backbone::Gcn, &gnn_cfg, &ac, SEED)
    });

    let _ = autoac_obs::drain();
    let observed = autoac_obs::with_obs(true, || {
        run_autoac_classification(&data, Backbone::Gcn, &gnn_cfg, &ac, SEED)
    });
    let rep = autoac_obs::drain();

    // (a) Observability must be read-only: identical bits, not just close.
    assert_eq!(
        baseline.outcome.macro_f1.to_bits(),
        observed.outcome.macro_f1.to_bits(),
        "macro-F1 must be bitwise identical with obs on vs off"
    );
    assert_eq!(
        baseline.outcome.micro_f1.to_bits(),
        observed.outcome.micro_f1.to_bits(),
        "micro-F1 must be bitwise identical with obs on vs off"
    );
    assert_eq!(baseline.search.assignment, observed.search.assignment);
    let (ba, oa) = (baseline.search.alpha.data(), observed.search.alpha.data());
    assert_eq!(ba.len(), oa.len());
    assert!(
        ba.iter().zip(oa).all(|(x, y)| x.to_bits() == y.to_bits()),
        "final α must be bitwise identical with obs on vs off"
    );

    // (b) Span hierarchy: search / epoch / kernel levels, plus retraining.
    let tree = rep.render_tree();
    let search = rep.span("search").unwrap_or_else(|| panic!("no search span:\n{tree}"));
    assert_eq!(search.count, 1);
    let epoch = rep.span("search/epoch").unwrap_or_else(|| panic!("no epoch span:\n{tree}"));
    assert_eq!(epoch.count, ac.search_epochs as u64);
    assert!(
        rep.span("search/epoch/alpha").is_some() && rep.span("search/epoch/omega").is_some(),
        "bilevel step spans missing:\n{tree}"
    );
    assert!(
        rep.spans.iter().any(|s| {
            s.count > 0
                && s.path.starts_with("search/epoch/")
                && (s.path.ends_with("matmul") || s.path.ends_with("spmm"))
        }),
        "kernel spans must nest under the search epochs:\n{tree}"
    );
    let train = rep.span("train").unwrap_or_else(|| panic!("no train span:\n{tree}"));
    assert!(train.count >= 1);
    assert!(rep.span("train/epoch").is_some(), "retrain epochs missing:\n{tree}");
    // Self-time never exceeds total time.
    assert!(rep.spans.iter().all(|s| s.self_ns <= s.total_ns));

    // (b) Trajectory series: the Fig. 4/5 recorder ran every epoch.
    let series_count = |name: &str| {
        rep.events
            .iter()
            .filter(|e| matches!(e, autoac_obs::Event::Series { name: n, .. } if *n == name))
            .count()
    };
    assert_eq!(series_count("alpha_entropy"), ac.search_epochs);
    assert_eq!(series_count("pool_hit_rate"), ac.search_epochs);
    assert_eq!(series_count("search_val_loss"), ac.search_epochs - ac.omega_warmup);
    assert_eq!(series_count("omega_grad_norm"), ac.search_epochs);
    assert_eq!(series_count("gmoc_loss"), ac.search_epochs);
    assert!(series_count("train_loss") >= 1, "retrain loss series missing");
    assert!(series_count("val_micro_f1") >= 1 && series_count("val_macro_f1") >= 1);
    // α entropy carries one value per cluster.
    let ent_width = rep
        .events
        .iter()
        .find_map(|e| match e {
            autoac_obs::Event::Series { name: "alpha_entropy", values, .. } => Some(values.len()),
            _ => None,
        })
        .unwrap();
    assert_eq!(ent_width, ac.clusters);

    // (b) Registry: the OpCache reported through obs.
    assert!(rep.counter("opcache_misses") > 0, "cache must have built operators");
    assert!(rep.counter("opcache_hits") > 0, "search+retrain must share operators");

    // (c) The JSONL export parses line by line with the data crate's
    // strict parser, and carries every record type we emitted.
    let dir = std::env::temp_dir().join(format!("autoac_obs_it_{}", std::process::id()));
    let path = dir.join("OBS_it.jsonl");
    rep.write_jsonl(&path, "it").expect("write jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut types_seen = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let v = autoac_data::json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        let ty = v.get("type").and_then(|t| t.as_str()).map(str::to_string);
        let ty = ty.unwrap_or_else(|| panic!("line {} lacks a type: {line}", i + 1));
        match ty.as_str() {
            "meta" => assert_eq!(v.get("run").and_then(|r| r.as_str()), Some("it")),
            "span" => assert!(v.get("path").is_some() && v.get("total_ns").is_some()),
            "series" => assert!(v.get("step").is_some() && v.get("values").is_some()),
            "counter" | "gauge" => assert!(v.get("value").is_some()),
            "hist" => assert!(v.get("buckets").is_some()),
            "shape" => assert!(v.get("op").is_some() && v.get("count").is_some()),
            "warn" => assert!(v.get("msg").is_some()),
            other => panic!("unknown record type {other:?} on line {}", i + 1),
        }
        types_seen.insert(ty);
    }
    for required in ["meta", "span", "series", "counter"] {
        assert!(types_seen.contains(required), "no {required} records in {path:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
