//! End-to-end integration of `autoac-check` with the training stack:
//!
//! 1. a dead/frozen-parameter audit over the model zoo (every parameter a
//!    pipeline exposes must be reachable from the training loss, or be
//!    explicitly allowlisted with a reason),
//! 2. the full tape verifier over each model's real training graph,
//! 3. proof that enabling `AUTOAC_CHECK` does not change training: metrics
//!    are bitwise-identical with checks on and off.

use autoac_check::tape;
use autoac_core::{
    pretrain_hgca, Backbone, CompletionMode, ForwardPipe, HgcaConfig, Pipeline, TrainConfig,
};
use autoac_data::{presets, synth, Dataset, Scale};
use autoac_nn::GnnConfig;
use autoac_tensor::chk;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny(seed: u64) -> Dataset {
    synth::generate(&presets::imdb(), Scale::Tiny, seed)
}

fn cfg(data: &Dataset) -> GnnConfig {
    GnnConfig {
        in_dim: 16,
        hidden: 16,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.0,
        ..Default::default()
    }
}

/// Names a pipeline's parameters positionally: stable across runs because
/// `params()` order is deterministic.
fn named_params(tag: &str, pipe: &dyn ForwardPipe) -> Vec<(String, autoac_tensor::Tensor)> {
    pipe.params()
        .into_iter()
        .enumerate()
        .map(|(i, p)| (format!("{tag}/param{i}"), p))
        .collect()
}

/// Builds a classification loss over the training split, exactly as the
/// trainer does.
fn training_loss(pipe: &dyn ForwardPipe, data: &Dataset, seed: u64) -> autoac_tensor::Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let fwd = pipe.forward(true, &mut rng);
    fwd.output.cross_entropy_rows(&data.global_labels(), &data.split.train)
}

#[test]
fn model_zoo_has_no_dead_or_frozen_params() {
    let data = tiny(0);
    let cfg = cfg(&data);
    for backbone in [
        Backbone::SimpleHgn,
        Backbone::Magnn,
        Backbone::HetGnn,
        Backbone::Gcn,
        Backbone::Gat,
        Backbone::Han,
        Backbone::HetSann,
        Backbone::Hgt,
        Backbone::Gtn,
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let pipe = Pipeline::new(&data, backbone, &cfg, CompletionMode::Zero, &mut rng);
        let loss = training_loss(&pipe, &data, 7);
        let params = named_params(backbone.name(), &pipe);
        let report = tape::verify_with_params(&loss, &params, &[]);
        assert!(
            report.is_clean(),
            "{}: audit found problems:\n{}",
            backbone.name(),
            report.render()
        );
        assert!(report.inspected > params.len());
    }
}

#[test]
fn gatne_dead_encoder_params_are_caught_then_allowlisted() {
    // GATNE is attribute-free by design (trainable base embeddings instead
    // of input features), so inside the standard pipeline every encoder
    // projection is unreachable from the loss. The audit must catch exactly
    // those, and the allowlist must silence exactly those.
    let data = tiny(1);
    let cfg = cfg(&data);
    let mut rng = StdRng::seed_from_u64(9);
    let pipe = Pipeline::new(&data, Backbone::Gatne, &cfg, CompletionMode::Zero, &mut rng);
    let loss = training_loss(&pipe, &data, 9);
    let params = named_params("GATNE", &pipe);
    let n_enc = pipe.encoder.params().len();
    assert!(n_enc > 0, "fixture needs a non-trivial encoder");

    let report = tape::verify_with_params(&loss, &params, &[]);
    let dead: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "dead-param")
        .map(|d| d.message.split('`').nth(1).expect("message names the param"))
        .collect();
    assert_eq!(dead.len(), n_enc, "expected every encoder param dead:\n{}", report.render());
    // `params()` lists encoder params first, so the dead set is the prefix.
    for (i, name) in dead.iter().enumerate() {
        assert_eq!(*name, format!("GATNE/param{i}"));
    }

    // Allowlisted (GATNE ignores input attributes; the encoder only exists
    // because the generic pipeline always carries one), the audit is clean.
    let allow: Vec<String> = dead.iter().map(|s| s.to_string()).collect();
    let allow_refs: Vec<&str> = allow.iter().map(String::as_str).collect();
    let report = tape::verify_with_params(&loss, &params, &allow_refs);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn hgca_pipe_audits_clean_after_pretraining() {
    let data = tiny(2);
    let cfg = cfg(&data);
    let hc = HgcaConfig { pretrain_epochs: 2, ..Default::default() };
    let pipe = pretrain_hgca(&data, Backbone::Gcn, &cfg, &hc, 3);
    let loss = training_loss(&pipe, &data, 3);
    // The frozen completion stage (encoder + mean transform) is evaluated
    // under no_grad and deliberately not in params(); everything params()
    // does expose must be live.
    let report = tape::verify_with_params(&loss, &named_params("HGCA", &pipe), &[]);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn training_metrics_are_bitwise_identical_with_checks_on() {
    let run = |checks: bool| {
        chk::with_check(checks, || {
            let data = tiny(4);
            let cfg = cfg(&data);
            let mut rng = StdRng::seed_from_u64(11);
            let pipe =
                Pipeline::new(&data, Backbone::SimpleHgn, &cfg, CompletionMode::Zero, &mut rng);
            let tc = TrainConfig { epochs: 5, patience: 5, ..Default::default() };
            autoac_core::train_node_classification(&pipe, &data, &tc, 11)
        })
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.epochs_run, on.epochs_run);
    assert_eq!(
        off.macro_f1.to_bits(),
        on.macro_f1.to_bits(),
        "AUTOAC_CHECK changed macro-F1: {} vs {}",
        off.macro_f1,
        on.macro_f1
    );
    assert_eq!(
        off.micro_f1.to_bits(),
        on.micro_f1.to_bits(),
        "AUTOAC_CHECK changed micro-F1: {} vs {}",
        off.micro_f1,
        on.micro_f1
    );
}
