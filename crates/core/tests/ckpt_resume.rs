//! Fault-injection tests for crash-safe checkpointing: a run killed mid-way
//! and resumed from its last snapshot must be **bitwise identical** to an
//! uninterrupted run — same α bits, same assignment, same test metrics.
//!
//! The crash is simulated in-process: running a stage with a truncated
//! epoch budget while checkpointing, then rerunning with the full budget
//! and `resume`, is exactly equivalent to a SIGKILL landing after the last
//! snapshot (the epochs past it are discarded either way, and the process
//! state is rebuilt from disk in both cases). `scripts/verify.sh` also
//! exercises the literal `kill -9` path end-to-end.

use std::path::PathBuf;

use autoac_ckpt::{CheckpointPolicy, CkptError, Snapshot};
use autoac_core::{
    run_autoac_classification, run_autoac_classification_checkpointed, search_checkpointed,
    train_node_classification, train_node_classification_checkpointed, AutoAcConfig, Backbone,
    ClassificationTask, ClusteringMode, CompletionMode, Pipeline, SearchOutcome, TrainConfig,
};
use autoac_data::{presets, synth, Dataset};
use autoac_graph::OpCache;
use autoac_nn::GnnConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 17;

fn tiny_imdb() -> Dataset {
    synth::generate(&presets::imdb(), synth::Scale::Tiny, 0)
}

fn small_cfg(data: &Dataset) -> GnnConfig {
    GnnConfig {
        in_dim: 16,
        hidden: 16,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.2,
        ..Default::default()
    }
}

fn small_ac() -> AutoAcConfig {
    AutoAcConfig {
        clusters: 4,
        search_epochs: 8,
        omega_warmup: 2,
        clustering: ClusteringMode::GmoC,
        train: TrainConfig { epochs: 6, patience: 6, ..Default::default() },
        ..Default::default()
    }
}

/// Fresh unique checkpoint root for one test; removed by the caller.
fn ckpt_root(test: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("autoac-resume-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn bits32(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Equality of search outcomes at the bit level (timing excluded).
fn assert_search_identical(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.assignment, b.assignment, "op assignment diverged");
    assert_eq!(a.cluster_of, b.cluster_of, "cluster assignment diverged");
    assert_eq!(a.op_histogram, b.op_histogram);
    assert_eq!(a.alpha.shape(), b.alpha.shape());
    assert_eq!(bits32(a.alpha.data()), bits32(b.alpha.data()), "α bits diverged");
    assert_eq!(bits32(&a.gmoc_trace), bits32(&b.gmoc_trace), "L_GmoC trace diverged");
}

/// Runs the search stage, optionally truncated to `epochs` and/or
/// checkpointed under `policy`.
fn run_search(
    data: &Dataset,
    epochs: usize,
    policy: Option<&CheckpointPolicy>,
) -> SearchOutcome {
    let cfg = small_cfg(data);
    let mut ac = small_ac();
    ac.search_epochs = epochs;
    let task = ClassificationTask::new(data);
    let cache = OpCache::new(&data.graph);
    search_checkpointed(data, Backbone::Gcn, &cfg, &ac, &task, SEED, &cache, policy)
}

#[test]
fn killed_search_resumes_bit_identically() {
    let data = tiny_imdb();
    let baseline = run_search(&data, 8, None);

    // "Crash" after epoch 5 with snapshots at epochs 2 and 4, then restart
    // with the full budget: the rerun must fast-forward to epoch 4 and land
    // on exactly the baseline's bits.
    let root = ckpt_root("search");
    let policy = CheckpointPolicy::new(&root).checkpoint_every(2);
    run_search(&data, 5, Some(&policy));
    let resumed = run_search(&data, 8, Some(&policy));
    assert_search_identical(&baseline, &resumed);

    // The run also checkpoints its own final epochs; a no-op "resume" at the
    // full budget replays nothing and still reports the same outcome.
    let rerun = run_search(&data, 8, Some(&policy));
    assert_search_identical(&baseline, &rerun);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn corrupted_latest_snapshot_falls_back_to_previous_good_one() {
    let data = tiny_imdb();
    let baseline = run_search(&data, 8, None);

    let root = ckpt_root("corrupt");
    let policy = CheckpointPolicy::new(&root).checkpoint_every(2);
    run_search(&data, 5, Some(&policy));

    // Flip the last byte of the newest snapshot (epoch 4): that is inside
    // the final section's CRC, so the file must now fail its integrity
    // check...
    let latest = root.join("ckpt-000004.bin");
    let mut bytes = std::fs::read(&latest).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0xFF;
    std::fs::write(&latest, &bytes).unwrap();
    match Snapshot::read(&latest) {
        Err(CkptError::Crc { .. }) => {}
        other => panic!("corruption not caught by CRC: {other:?}"),
    }

    // ...and the resume must fall back to the epoch-2 snapshot, replay
    // epochs 2..8, and still match the uninterrupted run bit for bit.
    let resumed = run_search(&data, 8, Some(&policy));
    assert_search_identical(&baseline, &resumed);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
#[should_panic(expected = "refusing to resume")]
fn resuming_with_a_different_config_fails_loudly() {
    let data = tiny_imdb();
    let root = ckpt_root("mismatch");
    let policy = CheckpointPolicy::new(&root).checkpoint_every(2);
    run_search(&data, 5, Some(&policy));

    // Same snapshots, different λ: the trajectory the snapshots belong to
    // no longer matches the requested config, so resume must refuse.
    let cfg = small_cfg(&data);
    let mut ac = small_ac();
    ac.lambda += 0.1;
    let task = ClassificationTask::new(&data);
    let cache = OpCache::new(&data.graph);
    search_checkpointed(&data, Backbone::Gcn, &cfg, &ac, &task, SEED, &cache, Some(&policy));
}

#[test]
fn killed_retraining_resumes_bit_identically() {
    let data = tiny_imdb();
    let cfg = small_cfg(&data);
    let tc = TrainConfig { epochs: 10, patience: 10, ..Default::default() };
    // The pipeline is rebuilt deterministically from the seed on every
    // "process start", exactly like a real restart would.
    let pipe = |data: &Dataset| {
        let mut rng = StdRng::seed_from_u64(SEED);
        Pipeline::new(data, Backbone::Gcn, &cfg, CompletionMode::Zero, &mut rng)
    };
    let baseline = train_node_classification(&pipe(&data), &data, &tc, SEED);

    let root = ckpt_root("train");
    let policy = CheckpointPolicy::new(&root).checkpoint_every(2);
    let truncated = TrainConfig { epochs: 6, ..tc };
    train_node_classification_checkpointed(&pipe(&data), &data, &truncated, SEED, Some(&policy));
    let resumed =
        train_node_classification_checkpointed(&pipe(&data), &data, &tc, SEED, Some(&policy));

    assert_eq!(baseline.macro_f1.to_bits(), resumed.macro_f1.to_bits(), "Macro-F1 diverged");
    assert_eq!(baseline.micro_f1.to_bits(), resumed.micro_f1.to_bits(), "Micro-F1 diverged");
    assert_eq!(baseline.epochs_run, resumed.epochs_run);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn full_run_killed_mid_search_resumes_to_identical_metrics() {
    let data = tiny_imdb();
    let cfg = small_cfg(&data);
    let ac = small_ac();
    let baseline = run_autoac_classification(&data, Backbone::Gcn, &cfg, &ac, SEED);

    // Crash during the search stage of a full AutoAC run: only the search
    // substage has snapshots on disk; retraining never started.
    let root = ckpt_root("full");
    let policy = CheckpointPolicy::new(&root).checkpoint_every(2);
    {
        let mut trunc = ac;
        trunc.search_epochs = 5;
        let task = ClassificationTask::new(&data);
        let cache = OpCache::new(&data.graph);
        let sub = policy.substage("search");
        search_checkpointed(
            &data,
            Backbone::Gcn,
            &cfg,
            &trunc,
            &task,
            SEED,
            &cache,
            Some(&sub),
        );
    }
    let resumed =
        run_autoac_classification_checkpointed(&data, Backbone::Gcn, &cfg, &ac, SEED, Some(&policy));

    assert_search_identical(&baseline.search, &resumed.search);
    assert_eq!(
        baseline.outcome.macro_f1.to_bits(),
        resumed.outcome.macro_f1.to_bits(),
        "Macro-F1 diverged"
    );
    assert_eq!(
        baseline.outcome.micro_f1.to_bits(),
        resumed.outcome.micro_f1.to_bits(),
        "Micro-F1 diverged"
    );
    assert_eq!(baseline.outcome.epochs_run, resumed.outcome.epochs_run);
    std::fs::remove_dir_all(&root).unwrap();
}
