//! Invariants of the AutoAC search machinery that must hold regardless of
//! data, seed, or configuration.

use autoac_completion::CompletionOp;
use autoac_core::{
    search, AutoAcConfig, Backbone, ClassificationTask, ClusteringMode, TrainConfig,
};
use autoac_data::{presets, synth, Dataset, Scale};
use autoac_nn::GnnConfig;

fn tiny(seed: u64) -> Dataset {
    synth::generate(&presets::imdb(), Scale::Tiny, seed)
}

fn cfg(data: &Dataset) -> GnnConfig {
    GnnConfig {
        in_dim: 16,
        hidden: 16,
        out_dim: data.num_classes,
        layers: 2,
        dropout: 0.2,
        ..Default::default()
    }
}

fn quick_ac(clustering: ClusteringMode, discrete: bool) -> AutoAcConfig {
    AutoAcConfig {
        clusters: 4,
        clustering,
        discrete,
        search_epochs: 6,
        omega_warmup: 2,
        train: TrainConfig { epochs: 4, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn alpha_stays_in_constraint_set_c2() {
    // After every configuration of the search, α must lie in [0, 1]^d —
    // prox_C2 is applied after every update.
    for (mode, discrete) in [
        (ClusteringMode::GmoC, true),
        (ClusteringMode::NoCluster, true),
        (ClusteringMode::Em, true),
        (ClusteringMode::EmWarmup(2), true),
    ] {
        let data = tiny(0);
        let task = ClassificationTask::new(&data);
        let out = search(&data, Backbone::Gcn, &cfg(&data), &quick_ac(mode, discrete), &task, 0);
        assert!(
            out.alpha.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "{mode:?}: alpha escaped C2"
        );
    }
}

#[test]
fn assignment_is_consistent_with_alpha_argmax() {
    let data = tiny(1);
    let task = ClassificationTask::new(&data);
    let out = search(
        &data,
        Backbone::Gcn,
        &cfg(&data),
        &quick_ac(ClusteringMode::GmoC, true),
        &task,
        1,
    );
    for (pos, &cluster) in out.cluster_of.iter().enumerate() {
        let expect = CompletionOp::from_index(out.alpha.argmax_row(cluster as usize));
        assert_eq!(out.assignment[pos], expect, "node {pos} disagrees with its cluster row");
    }
}

#[test]
fn histogram_sums_to_missing_count() {
    let data = tiny(2);
    let task = ClassificationTask::new(&data);
    for discrete in [true, false] {
        let out = search(
            &data,
            Backbone::Gcn,
            &cfg(&data),
            &quick_ac(ClusteringMode::GmoC, discrete),
            &task,
            2,
        );
        assert_eq!(
            out.op_histogram.iter().sum::<usize>(),
            data.missing_nodes().len(),
            "discrete={discrete}"
        );
    }
}

#[test]
fn cluster_ids_stay_in_range_for_every_mode() {
    let data = tiny(3);
    let task = ClassificationTask::new(&data);
    for mode in [
        ClusteringMode::GmoC,
        ClusteringMode::Em,
        ClusteringMode::EmWarmup(2),
    ] {
        let out = search(&data, Backbone::Gcn, &cfg(&data), &quick_ac(mode, true), &task, 3);
        assert!(out.cluster_of.iter().all(|&c| c < 4), "{mode:?}");
    }
}

#[test]
fn gmoc_trace_only_recorded_for_gmoc_mode() {
    let data = tiny(4);
    let task = ClassificationTask::new(&data);
    let gmoc = search(
        &data,
        Backbone::Gcn,
        &cfg(&data),
        &quick_ac(ClusteringMode::GmoC, true),
        &task,
        4,
    );
    assert_eq!(gmoc.gmoc_trace.len(), 6);
    let em = search(
        &data,
        Backbone::Gcn,
        &cfg(&data),
        &quick_ac(ClusteringMode::Em, true),
        &task,
        4,
    );
    assert!(em.gmoc_trace.is_empty());
}

#[test]
fn warmup_longer_than_search_never_updates_alpha() {
    let data = tiny(5);
    let task = ClassificationTask::new(&data);
    let mut ac = quick_ac(ClusteringMode::GmoC, true);
    ac.omega_warmup = 100; // > search_epochs
    let out = search(&data, Backbone::Gcn, &cfg(&data), &ac, &task, 5);
    // α never moved: every row still near-uniform (within the init noise),
    // so no op dominates by more than the 0.02 noise band.
    for r in 0..out.alpha.rows() {
        let row = out.alpha.row(r);
        let max = row.iter().cloned().fold(f32::MIN, f32::max);
        let min = row.iter().cloned().fold(f32::MAX, f32::min);
        assert!(max - min < 0.05, "α moved during pure warm-up: {row:?}");
    }
}

#[test]
fn search_time_is_reported() {
    let data = tiny(6);
    let task = ClassificationTask::new(&data);
    let out = search(
        &data,
        Backbone::Gcn,
        &cfg(&data),
        &quick_ac(ClusteringMode::GmoC, true),
        &task,
        6,
    );
    assert!(out.search_seconds > 0.0 && out.search_seconds < 300.0);
}
