#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
#
# Usage: scripts/run_all.sh [small|tiny|paper] [seeds]
# Defaults sized for a single CPU core (~2h at "small"/3 with the main
# tables at small scale and the sensitivity sweeps at tiny scale).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"
SEEDS="${2:-3}"
B=./target/release
mkdir -p results

cargo build --release -p autoac-bench --bins

$B/table1_datasets --scale paper                                                          | tee results/table1.txt
$B/table2_node_classification --scale "$SCALE" --seeds "$SEEDS" --epochs 80 --search-epochs 25 | tee results/table2.txt
$B/table3_vs_hgnnac           --scale "$SCALE" --seeds "$SEEDS" --epochs 60 --search-epochs 25 | tee results/table3.txt
$B/table4_runtime             --scale "$SCALE" --seeds 1        --epochs 60 --search-epochs 25 | tee results/table4.txt
$B/table5_link_prediction     --scale "$SCALE" --seeds 2        --epochs 60 --search-epochs 20 | tee results/table5.txt
$B/table6_7_ablation_ops      --scale "$SCALE" --seeds 2        --epochs 60 --search-epochs 25 | tee results/table6_7.txt
$B/table8_discrete_constraints --scale "$SCALE" --seeds 2       --epochs 60 --search-epochs 25 | tee results/table8.txt
$B/table9_missing_rates       --scale tiny     --seeds 2        --epochs 60 --search-epochs 20 | tee results/table9.txt
$B/table10_masked_edges       --scale tiny     --seeds 2        --epochs 60 --search-epochs 20 | tee results/table10.txt
$B/fig3_clustering_methods    --scale tiny     --seeds 2        --epochs 50 --search-epochs 20 | tee results/fig3.txt
$B/fig4_gmoc_convergence      --scale "$SCALE"                  --epochs 60 --search-epochs 30 | tee results/fig4.txt
$B/fig5_op_distribution       --scale "$SCALE"                  --epochs 60 --search-epochs 30 | tee results/fig5.txt
$B/fig6_7_per_type_distribution --scale "$SCALE"                --epochs 60 --search-epochs 30 | tee results/fig6_7.txt
$B/fig8_sensitivity_m         --scale tiny     --seeds 2        --epochs 50 --search-epochs 20 | tee results/fig8.txt
$B/fig9_sensitivity_lambda    --scale tiny     --seeds 2        --epochs 50 --search-epochs 20 | tee results/fig9.txt
$B/fig10_11_lr_wd_sensitivity --scale tiny     --seeds 2        --epochs 50 --search-epochs 20 | tee results/fig10_11.txt
$B/ablation_ppnp_k            --scale tiny     --seeds 2        --epochs 50                    | tee results/ablation_ppnp_k.txt
$B/ablation_warmup            --scale tiny     --seeds 2        --epochs 50 --search-epochs 20 | tee results/ablation_warmup.txt

echo "all experiments written to results/"
