#!/usr/bin/env bash
# Builds the workspace and runs the full test suite twice: once with the
# buffer pool disabled and kernels pinned serial (AUTOAC_POOL=0,
# AUTOAC_NUM_THREADS=1) and once with the pool enabled at the hardware
# thread count. Kernels are bitwise-deterministic across thread counts and
# the pool is bitwise-invisible, so both runs must pass identically. Then:
#
#  - a literal kill-and-resume smoke test of the checkpoint subsystem: a
#    run SIGKILLed mid-search, resumed from its snapshots, must produce a
#    byte-identical result digest to an uninterrupted run;
#  - the allocation benchmark (bench_alloc), which trains the same seeded
#    model with the pool off and on in one process and asserts bitwise-equal
#    metrics (the smoke run writes its numbers to a temp dir; the committed
#    results/BENCH_alloc.json comes from a paper-scale run);
#  - the checking pass: autoac-lint must exit clean over the repo, the full
#    suite must pass with AUTOAC_CHECK=1 armed (zero sanitizer findings on
#    clean code), and check_smoke must prove every analysis catches its
#    seeded bug class;
#  - the sharding pass (bench_shard --smoke): on a tiny power-law graph,
#    the degenerate full-batch minibatch config must produce bitwise-
#    identical metrics to the legacy whole-graph pipeline, and the
#    neighbor-sampled and type-aware shard schedules must run end to end
#    (the smoke run writes to a temp dir; the committed
#    results/BENCH_shard.json comes from a paper-scale run);
#  - the observability pass (obs_smoke): the same short search + retrain
#    with AUTOAC_OBS=0 and AUTOAC_OBS=1 must produce byte-identical result
#    digests (instrumentation is read-only), and the enabled run must
#    export an OBS_smoke.jsonl that parses line by line and carries the
#    promised span tree and trajectory series (the binary self-validates
#    and exits non-zero on any miss);
#  - the kernel dispatch pass: the same short search + retrain pinned to
#    AUTOAC_KERNEL=scalar, =blocked, and =auto must produce byte-identical
#    result digests (the microkernels' bitwise-equality contract, end to
#    end), plus a bench_kernels smoke run that A/B-times every kernel pair
#    and asserts bitwise parity on each measured shape;
#  - the serving pass: an autoac_serve daemon is launched on an ephemeral
#    port from a freshly trained checkpoint and driven with concurrent
#    closed-loop clients (serve_bench --connect) twice — batching on and
#    off — whose response digests must be identical (micro-batching is
#    bitwise-invisible); /metrics must parse as Prometheus exposition
#    text, and POST /admin/shutdown must take the daemon down gracefully.
#    An in-process serve_bench smoke repeats the A/B inside one process.
#  - the tracing pass: the same driver load against a daemon with
#    AUTOAC_TRACE=0 must print a digest identical to the traced run
#    (request-scoped tracing is bitwise-invisible), and the flight-
#    recorder dump every daemon leaves on shutdown must parse as strict
#    JSONL (serve_bench --validate-flight).
#
# The test suites run under AUTOAC_SLOW_TESTS=1: the default (fast) test
# profile shrinks end-to-end budgets for interactive iteration; verify is
# where the full original budgets are exercised.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_THREADS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)"

echo "== cargo build --release --workspace =="
# --workspace: the root manifest is a package, so a bare build would cover
# only it — the smoke binaries (ckpt_smoke, bench_*, autoac_serve, ...)
# live in member crates and must be built explicitly.
cargo build --release --workspace

echo "== cargo test -q (AUTOAC_POOL=0, AUTOAC_NUM_THREADS=1: no recycling, serial kernels) =="
AUTOAC_SLOW_TESTS=1 AUTOAC_POOL=0 AUTOAC_NUM_THREADS=1 cargo test -q

echo "== cargo test -q (pool enabled, AUTOAC_NUM_THREADS=${MAX_THREADS}, parallel kernels) =="
AUTOAC_SLOW_TESTS=1 AUTOAC_NUM_THREADS="${MAX_THREADS}" cargo test -q

echo "== checking pass: autoac-lint, suite under AUTOAC_CHECK=1, check_smoke =="
cargo run -q --release -p autoac-check --bin autoac-lint \
  || { echo "verify.sh: FAIL — autoac-lint found violations"; exit 1; }

echo "== analysis pass: autoac-lint --analyze vs results/ANALYSIS.json =="
ANALYSIS_NOW="$(mktemp)"
cargo run -q --release -p autoac-check --bin autoac-lint -- --analyze --json > "$ANALYSIS_NOW" \
  || { echo "verify.sh: FAIL — non-allowlisted analysis findings; fix or analyze:allow(rule, reason)"; \
       cat "$ANALYSIS_NOW"; rm -f "$ANALYSIS_NOW"; exit 1; }
if ! diff -u results/ANALYSIS.json "$ANALYSIS_NOW"; then
  echo "verify.sh: FAIL — analysis drifted from the committed baseline."
  echo "  If the change is intentional, re-baseline with:"
  echo "    cargo run -q --release -p autoac-check --bin autoac-lint -- --analyze --json > results/ANALYSIS.json"
  rm -f "$ANALYSIS_NOW"
  exit 1
fi
rm -f "$ANALYSIS_NOW"
# Release mode: the armed hooks sit on the hottest paths and the debug
# suite slows several-fold with them on.
AUTOAC_CHECK=1 cargo test -q --release \
  -p autoac-tensor -p autoac-check -p autoac-core -p autoac-nn \
  -p autoac-completion -p autoac -p autoac-serve \
  || { echo "verify.sh: FAIL — suite failed with AUTOAC_CHECK=1 armed"; exit 1; }
SMOKE_JSON="$(cargo run -q --release -p autoac-check --bin check_smoke)" \
  || { echo "verify.sh: FAIL — check_smoke: an analysis missed its seeded bug"; exit 1; }
echo "   check_smoke: ${SMOKE_JSON}"

echo "== kill -9 and resume smoke test (ckpt_smoke) =="
SMOKE="./target/release/ckpt_smoke"
SMOKE_ARGS=(--scale tiny --search-epochs 10 --epochs 8)
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Uninterrupted baseline digest (no checkpointing involved).
"$SMOKE" "${SMOKE_ARGS[@]}" --out "$WORK/baseline.json"

# Same run, checkpointing every 2 epochs and paced so the kill reliably
# lands mid-run; SIGKILL it, then resume from the snapshots at full speed.
# Resume is correct for ANY kill timing (before the first snapshot it just
# starts over), so no synchronization with the victim is needed.
"$SMOKE" "${SMOKE_ARGS[@]}" --checkpoint-dir "$WORK/ckpts" --checkpoint-every 2 \
  --epoch-sleep-ms 300 --out "$WORK/killed.json" &
VICTIM=$!
sleep 1.5
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
if [ -f "$WORK/killed.json" ]; then
  echo "verify.sh: warning: victim finished before the kill; resume path reduces to a replay"
fi
SNAPSHOTS="$(find "$WORK/ckpts" -name 'ckpt-*.bin' 2>/dev/null | wc -l)"
echo "   killed mid-run with ${SNAPSHOTS} snapshot(s) on disk"

"$SMOKE" "${SMOKE_ARGS[@]}" --checkpoint-dir "$WORK/ckpts" --resume --out "$WORK/resumed.json"
diff "$WORK/baseline.json" "$WORK/resumed.json" \
  || { echo "verify.sh: FAIL — resumed run diverged from uninterrupted baseline"; exit 1; }
echo "   resumed run is byte-identical to the uninterrupted baseline"

echo "== allocation benchmark (bench_alloc → results/BENCH_alloc.json) =="
# Tiny scale keeps verify fast; the committed results/BENCH_alloc.json is
# produced at --scale paper, where allocation dominates and the pool's
# speedup is largest. The bitwise-identical-metrics assertion inside the
# binary is the part verify depends on.
# --out keeps the smoke run from clobbering the committed paper-scale
# results/BENCH_alloc.json.
./target/release/bench_alloc --scale tiny --epochs 10 --out "$WORK/bench_alloc_smoke.json"

echo "== sharding pass (bench_shard smoke: full-batch digest identity + schedules) =="
# The binary asserts the degenerate full-batch minibatch config is bitwise
# identical to the legacy pipeline (the sampled-vs-full digest check), then
# exercises the sampled and shard schedules end to end.
# --out keeps the smoke run from clobbering the committed paper-scale
# results/BENCH_shard.json (regenerate with: ./target/release/bench_shard).
./target/release/bench_shard --smoke --out "$WORK/bench_shard_smoke.json" \
  || { echo "verify.sh: FAIL — bench_shard smoke (identity or schedules) failed"; exit 1; }

echo "== observability pass (obs_smoke: bitwise identity + JSONL validation) =="
OBS_SMOKE="./target/release/obs_smoke"
OBS_ARGS=(--scale tiny --search-epochs 6 --epochs 6)
AUTOAC_OBS=0 "$OBS_SMOKE" "${OBS_ARGS[@]}" --out "$WORK/obs_off.json"
AUTOAC_OBS=1 "$OBS_SMOKE" "${OBS_ARGS[@]}" --out "$WORK/obs_on.json" --obs-dir "$WORK/obs" \
  || { echo "verify.sh: FAIL — obs export failed self-validation"; exit 1; }
diff "$WORK/obs_off.json" "$WORK/obs_on.json" \
  || { echo "verify.sh: FAIL — AUTOAC_OBS=1 perturbed the training trajectory"; exit 1; }
echo "   AUTOAC_OBS=1 digest is byte-identical to AUTOAC_OBS=0; OBS_smoke.jsonl validated"

echo "== kernel dispatch pass (AUTOAC_KERNEL digest identity + bench_kernels smoke) =="
for kernel in scalar blocked auto; do
  AUTOAC_KERNEL="$kernel" "$OBS_SMOKE" "${OBS_ARGS[@]}" --out "$WORK/kernel_$kernel.json"
done
diff "$WORK/kernel_scalar.json" "$WORK/kernel_blocked.json" \
  || { echo "verify.sh: FAIL — blocked kernels diverged from scalar end to end"; exit 1; }
diff "$WORK/kernel_scalar.json" "$WORK/kernel_auto.json" \
  || { echo "verify.sh: FAIL — auto dispatch diverged from scalar end to end"; exit 1; }
echo "   AUTOAC_KERNEL=scalar/blocked/auto digests are byte-identical"
# Smoke-scale A/B bench: asserts bitwise kernel parity on every measured
# shape (the committed results/BENCH_kernels.json comes from a full run).
./target/release/bench_kernels --smoke 1 --out "$WORK/bench_kernels_smoke.json" \
  || { echo "verify.sh: FAIL — bench_kernels smoke (parity or bench) failed"; exit 1; }

echo "== serving pass (autoac_serve + serve_bench: batching A/B, metrics, graceful shutdown) =="
SERVE="./target/release/autoac_serve"
SERVE_BENCH="./target/release/serve_bench"
# One small checkpoint shared by both daemon launches.
"$SERVE" --train-out "$WORK/serve.ckpt" --epochs 6 --seed 7

serve_drive() { # $1: batching flag ("" or --no-batching), $2: digest file
  rm -f "$WORK/serve.port"
  # The flight dump is routed into the work dir (default would be
  # results/) and named after the digest file so each launch leaves its
  # own post-mortem for the tracing pass to validate.
  # shellcheck disable=SC2086
  "$SERVE" --checkpoint "$WORK/serve.ckpt" --addr 127.0.0.1:0 --workers 4 \
    --port-file "$WORK/serve.port" --flight-dir "$WORK/flight" \
    --run "$(basename "$2")" $1 &
  local daemon=$!
  for _ in $(seq 1 100); do [ -s "$WORK/serve.port" ] && break; sleep 0.1; done
  [ -s "$WORK/serve.port" ] \
    || { echo "verify.sh: FAIL — autoac_serve never became ready"; kill "$daemon" 2>/dev/null; exit 1; }
  # Drives concurrent clients, validates /healthz and /metrics exposition
  # text, prints the response digest, and issues POST /admin/shutdown.
  "$SERVE_BENCH" --connect "$(cat "$WORK/serve.port")" --clients 4 --requests 40 \
    --shutdown | tee "$2.log" \
    || { echo "verify.sh: FAIL — serve_bench driver failed"; kill "$daemon" 2>/dev/null; exit 1; }
  grep '^digest: ' "$2.log" > "$2"
  # The daemon must exit on its own after /admin/shutdown (graceful path).
  wait "$daemon" \
    || { echo "verify.sh: FAIL — autoac_serve exited non-zero after shutdown"; exit 1; }
}

serve_drive "" "$WORK/serve_digest_batched"
serve_drive "--no-batching" "$WORK/serve_digest_single"
diff "$WORK/serve_digest_batched" "$WORK/serve_digest_single" \
  || { echo "verify.sh: FAIL — batched responses diverged from single-request responses"; exit 1; }
echo "   batched and unbatched serving digests are byte-identical; graceful shutdown OK"
# In-process A/B smoke: same assertion plus throughput/latency accounting
# (the committed results/BENCH_serve.json comes from a full run).
"$SERVE_BENCH" --smoke --out "$WORK/bench_serve_smoke.json" \
  || { echo "verify.sh: FAIL — serve_bench in-process A/B failed"; exit 1; }

echo "== tracing pass (AUTOAC_TRACE digest identity + flight dump validation) =="
# Request-scoped tracing must be bitwise-invisible to responses: the same
# driver load against a daemon with tracing disabled must print the same
# digest as the traced batched run above.
AUTOAC_TRACE=0 serve_drive "" "$WORK/serve_digest_untraced"
diff "$WORK/serve_digest_batched" "$WORK/serve_digest_untraced" \
  || { echo "verify.sh: FAIL — AUTOAC_TRACE=0 changed response bytes"; exit 1; }
echo "   AUTOAC_TRACE=0 serving digest is byte-identical to the traced run"
# Every daemon above shut down gracefully and left a flight-recorder
# post-mortem behind; each must parse as strict JSONL with records in it.
for run in serve_digest_batched serve_digest_single serve_digest_untraced; do
  "$SERVE_BENCH" --validate-flight "$WORK/flight/FLIGHT_$run.jsonl" \
    || { echo "verify.sh: FAIL — flight dump for $run is missing or malformed"; exit 1; }
done

echo "verify.sh: all suites passed with pool off+serial and pool on+parallel; kill-and-resume, bench_alloc, sharding, obs smoke, kernel dispatch, serving, and tracing OK"
