#!/usr/bin/env bash
# Builds the workspace and runs the full test suite twice: once pinned to
# the exact serial kernel path (AUTOAC_NUM_THREADS=1) and once at the
# hardware thread count. Kernels are bitwise-deterministic across thread
# counts, so both runs must pass identically.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_THREADS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (AUTOAC_NUM_THREADS=1, serial kernels) =="
AUTOAC_NUM_THREADS=1 cargo test -q

echo "== cargo test -q (AUTOAC_NUM_THREADS=${MAX_THREADS}, parallel kernels) =="
AUTOAC_NUM_THREADS="${MAX_THREADS}" cargo test -q

echo "verify.sh: all suites passed under both thread settings"
